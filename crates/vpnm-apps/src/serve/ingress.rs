//! Concurrent ingress: producer threads, bounded hand-off, trace replay.
//!
//! N producer threads feed the single-threaded serving loop through
//! bounded lock-free SPSC rings ([`vpnm_core::ring::spsc`] — one data
//! lane per producer, two epoch batches deep, with cache-line-padded
//! head/tail indices), drained in whole-epoch batches. The hand-off is
//! the "park" half of the serving layer's reject/park backpressure: a
//! producer that outruns the server spins-then-yields on its full lane
//! — counted, never buffered unboundedly. The "reject" half (tail drops
//! at the bounded ingress queue) lives in the serving loop itself.
//!
//! Batch buffers travel a closed loop: drained `Vec<Arrival>`s return
//! to their producer over a reverse recycle lane, so the steady state
//! allocates nothing — the same buffers shuttle back and forth for the
//! whole run.
//!
//! # Determinism
//!
//! Producer `p` of `P` owns the interface cycles `c ≡ p (mod P)` and
//! draws its arrival coin flips and flow IDs from its own
//! `seed ⊕ splitmix` stream, so the *content* of every epoch batch is a
//! pure function of `(seed, p, epoch)` — thread scheduling moves only
//! wall time, never a packet. Replayed traces are partitioned by the same
//! cycle-ownership rule.

use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::thread::JoinHandle;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm_core::ring::{spsc, RecvError, SpscReceiver, SpscSender};
use vpnm_sim::rng::splitmix64;

use super::FlowMix;

/// One offered packet: the interface cycle it arrives on, its flow ID,
/// and the tenant that offered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Absolute interface cycle of arrival.
    pub cycle: u64,
    /// Flow identifier (hashed into the flow table by the server).
    pub flow: u64,
    /// Offering tenant (0 in single-tenant traffic).
    pub tenant: u16,
}

/// Where producers get their packets from.
#[derive(Debug, Clone)]
pub enum ArrivalSource {
    /// Synthetic traffic: Bernoulli(`load`) arrival per owned cycle,
    /// flow IDs drawn from `mix`.
    Synthetic {
        /// Offered load in packets per interface cycle (0.0–1.0).
        load: f64,
        /// Flow-ID distribution.
        mix: FlowMix,
    },
    /// Replay of a pre-generated trace (see [`read_trace`]), partitioned
    /// across producers by cycle ownership.
    Trace(Arc<Vec<Arrival>>),
}

/// Epoch geometry shared by producers and server.
#[derive(Debug, Clone, Copy)]
pub struct EpochPlan {
    /// Total offered interface cycles.
    pub cycles: u64,
    /// Cycles per epoch (the batch hand-off unit).
    pub epoch_len: u64,
}

impl EpochPlan {
    /// Number of epochs covering the offered window (last may be short).
    pub fn epochs(&self) -> u64 {
        self.cycles.div_ceil(self.epoch_len)
    }

    /// Cycle window `[start, end)` of epoch `e`.
    pub fn window(&self, e: u64) -> (u64, u64) {
        let start = e * self.epoch_len;
        (start, ((e + 1) * self.epoch_len).min(self.cycles))
    }
}

/// The running producer fleet and its hand-off lanes.
pub struct IngressRig {
    lanes: Vec<SpscReceiver<Vec<Arrival>>>,
    recycle: Vec<SpscSender<Vec<Arrival>>>,
    handles: Vec<JoinHandle<()>>,
    merged: Vec<Arrival>,
    plan: EpochPlan,
}

impl std::fmt::Debug for IngressRig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngressRig")
            .field("producers", &self.lanes.len())
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

/// How many epoch batches a lane holds before its producer parks.
const LANE_DEPTH: usize = 2;

/// Recycle lanes are deeper than data lanes so returning a drained
/// buffer can never block the server: per producer at most
/// `LANE_DEPTH` buffers sit in the data lane, one is being filled, and
/// one is in the server's hands.
const RECYCLE_DEPTH: usize = LANE_DEPTH + 2;

impl IngressRig {
    /// Spawns `producers` threads generating from `source` under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `producers` is 0 or `plan.epoch_len` is 0.
    pub fn spawn(producers: u32, source: &ArrivalSource, plan: EpochPlan, seed: u64) -> Self {
        assert!(producers > 0, "need at least one producer");
        assert!(plan.epoch_len > 0, "epoch length must be positive");
        let mut lanes = Vec::with_capacity(producers as usize);
        let mut recycle = Vec::with_capacity(producers as usize);
        let mut handles = Vec::with_capacity(producers as usize);
        for p in 0..producers {
            let (tx, rx) = spsc::<Vec<Arrival>>(LANE_DEPTH);
            let (pool_tx, pool_rx) = spsc::<Vec<Arrival>>(RECYCLE_DEPTH);
            lanes.push(rx);
            recycle.push(pool_tx);
            let source = source.clone();
            handles.push(std::thread::spawn(move || {
                produce(p, producers, &source, plan, seed, &tx, pool_rx);
            }));
        }
        IngressRig { lanes, recycle, handles, merged: Vec::new(), plan }
    }

    /// The epoch geometry the fleet is generating against.
    pub fn plan(&self) -> EpochPlan {
        self.plan
    }

    /// Receives every producer's batch for the next epoch and merges
    /// them into one cycle-ordered arrival slice (valid until the next
    /// call). Drained batch buffers are recycled back to their
    /// producers, so the steady state allocates nothing.
    ///
    /// Must be called exactly [`EpochPlan::epochs`] times.
    ///
    /// # Panics
    ///
    /// Panics if a producer thread died (lane disconnected).
    pub fn next_epoch(&mut self) -> &[Arrival] {
        self.merged.clear();
        for (lane, pool) in self.lanes.iter_mut().zip(&self.recycle) {
            let mut batch = match lane.recv() {
                Ok(b) => b,
                Err(_) => panic!("producer thread died before its last epoch"),
            };
            self.merged.extend_from_slice(&batch);
            batch.clear();
            // A failed return (producer already exited) just drops the
            // buffer; correctness never depends on recycling.
            let _ = pool.try_send(batch);
        }
        // Each cycle has exactly one owner, so sorting by cycle is a
        // total order and the merge is deterministic.
        self.merged.sort_unstable_by_key(|a| a.cycle);
        &self.merged
    }

    /// Times any producer blocked on a full hand-off lane (measurement
    /// domain — depends on thread timing, zeroed by
    /// [`ServingMetrics::canonical`](vpnm_core::ServingMetrics::canonical)).
    ///
    /// Mid-run this is a lower bound; the exact total is what
    /// [`IngressRig::join`] returns after the fleet has stopped.
    pub fn parks(&self) -> u64 {
        self.lanes.iter().map(SpscReceiver::parks).sum()
    }

    /// Joins the producer fleet (all epochs must have been received)
    /// and returns the exact park total: the count is read with
    /// `Acquire` *after* every producer thread has been joined, so no
    /// late `Release` increment can be missed.
    pub fn join(self) -> u64 {
        for h in self.handles {
            h.join().expect("producer thread panicked");
        }
        self.lanes.iter().map(SpscReceiver::parks).sum()
    }
}

fn produce(
    p: u32,
    producers: u32,
    source: &ArrivalSource,
    plan: EpochPlan,
    seed: u64,
    tx: &SpscSender<Vec<Arrival>>,
    mut pool: SpscReceiver<Vec<Arrival>>,
) {
    let stride = u64::from(producers);
    let mut synth = match source {
        ArrivalSource::Synthetic { load, mix } => {
            let rng = StdRng::seed_from_u64(splitmix64(seed ^ (0xA110_C8ED + u64::from(p))));
            Some((*load, mix.generator(splitmix64(seed.rotate_left(17) ^ u64::from(p))), rng))
        }
        ArrivalSource::Trace(_) => None,
    };
    let mut trace_pos = 0usize;
    for e in 0..plan.epochs() {
        let (start, end) = plan.window(e);
        let mut batch = match pool.try_recv() {
            Ok(b) => b, // recycled by the server, already cleared
            Err(RecvError::Empty) | Err(RecvError::Disconnected) => Vec::new(),
        };
        match source {
            ArrivalSource::Synthetic { .. } => {
                let (load, gen, rng) = synth.as_mut().expect("synthetic state");
                // first owned cycle >= start
                let mut c = start + (u64::from(p) + stride - start % stride) % stride;
                while c < end {
                    if rng.gen::<f64>() < *load {
                        let (tenant, flow) = gen.next_tagged();
                        batch.push(Arrival { cycle: c, flow, tenant });
                    }
                    c += stride;
                }
            }
            ArrivalSource::Trace(trace) => {
                while trace_pos < trace.len() && trace[trace_pos].cycle < end {
                    let a = trace[trace_pos];
                    trace_pos += 1;
                    if a.cycle % stride == u64::from(p) {
                        batch.push(a);
                    }
                }
            }
        }
        // `send` parks (counted inside the ring) while the lane is
        // full and returns false only if the server is gone.
        if !tx.send(batch) {
            return; // server gone; nothing left to do
        }
    }
}

/// Magic prefix of the single-tenant (V1) binary arrival-trace format.
pub const TRACE_MAGIC: &[u8; 8] = b"VPNMTRC1";

/// Magic prefix of the tenant-tagged (V2) arrival-trace format.
pub const TRACE_MAGIC_V2: &[u8; 8] = b"VPNMTRC2";

/// Writes an arrival trace: magic, offered-cycle count, record count,
/// then the records, all little-endian u64.
///
/// A trace whose arrivals are all tenant 0 is written in the V1 format
/// (`(cycle, flow)` pairs — byte-identical to pre-tenancy traces); any
/// non-zero tenant switches to V2 `(cycle, flow, tenant)` triples.
/// [`read_trace`] accepts both.
///
/// # Errors
///
/// Returns the I/O error message.
pub fn write_trace(path: &str, cycles: u64, arrivals: &[Arrival]) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    let io = |e: std::io::Error| format!("write {path}: {e}");
    let tagged = arrivals.iter().any(|a| a.tenant != 0);
    w.write_all(if tagged { TRACE_MAGIC_V2 } else { TRACE_MAGIC }).map_err(io)?;
    w.write_all(&cycles.to_le_bytes()).map_err(io)?;
    w.write_all(&(arrivals.len() as u64).to_le_bytes()).map_err(io)?;
    for a in arrivals {
        w.write_all(&a.cycle.to_le_bytes()).map_err(io)?;
        w.write_all(&a.flow.to_le_bytes()).map_err(io)?;
        if tagged {
            w.write_all(&u64::from(a.tenant).to_le_bytes()).map_err(io)?;
        }
    }
    w.flush().map_err(io)
}

/// Reads a trace written by [`write_trace`], returning the offered-cycle
/// count and the cycle-ordered arrivals.
///
/// # Errors
///
/// Returns a message for I/O failures, a bad magic, or an out-of-order /
/// duplicate-cycle record (one arrival per cycle is the format's
/// invariant — it is what makes producer partitioning exact).
pub fn read_trace(path: &str) -> Result<(u64, Vec<Arrival>), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut r = std::io::BufReader::new(file);
    let io = |e: std::io::Error| format!("read {path}: {e}");
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io)?;
    let tagged = match &magic {
        m if m == TRACE_MAGIC => false,
        m if m == TRACE_MAGIC_V2 => true,
        _ => return Err(format!("{path}: not a VPNM trace (bad magic)")),
    };
    let mut word = [0u8; 8];
    r.read_exact(&mut word).map_err(io)?;
    let cycles = u64::from_le_bytes(word);
    r.read_exact(&mut word).map_err(io)?;
    let count = u64::from_le_bytes(word);
    let mut arrivals = Vec::with_capacity(count.min(1 << 28) as usize);
    let mut prev: Option<u64> = None;
    for i in 0..count {
        r.read_exact(&mut word).map_err(io)?;
        let cycle = u64::from_le_bytes(word);
        r.read_exact(&mut word).map_err(io)?;
        let flow = u64::from_le_bytes(word);
        let tenant = if tagged {
            r.read_exact(&mut word).map_err(io)?;
            u16::try_from(u64::from_le_bytes(word))
                .map_err(|_| format!("{path}: record {i} tenant does not fit in 16 bits"))?
        } else {
            0
        };
        if cycle >= cycles {
            return Err(format!("{path}: record {i} cycle {cycle} outside trace of {cycles}"));
        }
        if prev.is_some_and(|p| p >= cycle) {
            return Err(format!("{path}: record {i} breaks one-arrival-per-cycle order"));
        }
        prev = Some(cycle);
        arrivals.push(Arrival { cycle, flow, tenant });
    }
    Ok((cycles, arrivals))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(producers: u32, source: &ArrivalSource, plan: EpochPlan, seed: u64) -> Vec<Arrival> {
        let mut rig = IngressRig::spawn(producers, source, plan, seed);
        let mut all = Vec::new();
        for _ in 0..plan.epochs() {
            all.extend_from_slice(rig.next_epoch());
        }
        rig.join();
        all
    }

    #[test]
    fn slow_server_parks_producers_and_join_reports_them() {
        // 8 epochs through a 2-deep lane with a stalled server: the
        // producer must fill the lane and park at least once.
        let plan = EpochPlan { cycles: 8 * 16, epoch_len: 16 };
        let source = ArrivalSource::Synthetic { load: 1.0, mix: FlowMix::Uniform { space: 16 } };
        let mut rig = IngressRig::spawn(1, &source, plan, 3);
        std::thread::sleep(std::time::Duration::from_millis(100));
        let mut offered = 0usize;
        for _ in 0..plan.epochs() {
            offered += rig.next_epoch().len();
        }
        assert_eq!(offered as u64, plan.cycles, "load 1.0 offers every cycle");
        let parks = rig.join();
        assert!(parks >= 1, "producer never parked against a stalled server");
    }

    #[test]
    fn synthetic_batches_are_deterministic_and_owned() {
        let plan = EpochPlan { cycles: 10_000, epoch_len: 256 };
        let source =
            ArrivalSource::Synthetic { load: 0.4, mix: FlowMix::Uniform { space: 1 << 16 } };
        let a = collect(4, &source, plan, 7);
        let b = collect(4, &source, plan, 7);
        assert_eq!(a, b, "same seed, same fleet => identical arrivals");
        assert!(!a.is_empty());
        let expected = (plan.cycles as f64 * 0.4) as u64;
        assert!(
            (a.len() as u64).abs_diff(expected) < expected / 5,
            "offered {} far from load target {expected}",
            a.len()
        );
        for w in a.windows(2) {
            assert!(w[0].cycle < w[1].cycle, "merged stream is cycle-ordered, one per cycle");
        }
        let c = collect(4, &source, plan, 8);
        assert_ne!(a, c, "seed changes the traffic");
    }

    #[test]
    fn trace_replay_reproduces_the_trace_for_any_fleet_size() {
        let trace: Vec<Arrival> = (0..500)
            .filter(|c| c % 3 != 0)
            .map(|c| Arrival { cycle: c, flow: c * 17, tenant: (c % 5) as u16 })
            .collect();
        let plan = EpochPlan { cycles: 500, epoch_len: 64 };
        let source = ArrivalSource::Trace(Arc::new(trace.clone()));
        for producers in [1, 2, 5] {
            assert_eq!(collect(producers, &source, plan, 0), trace, "{producers} producers");
        }
    }

    #[test]
    fn trace_roundtrip() {
        let dir = std::env::temp_dir().join("vpnm-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.vpnmtrc");
        let path = path.to_str().unwrap();
        let arrivals = vec![
            Arrival { cycle: 0, flow: 9, tenant: 0 },
            Arrival { cycle: 3, flow: 1 << 40, tenant: 0 },
        ];
        write_trace(path, 10, &arrivals).unwrap();
        // All-tenant-0 traces stay in the pre-tenancy V1 byte format.
        assert_eq!(&std::fs::read(path).unwrap()[..8], TRACE_MAGIC);
        assert_eq!(read_trace(path).unwrap(), (10, arrivals));
        std::fs::write(path, b"NOTATRACE").unwrap();
        assert!(read_trace(path).unwrap_err().contains("bad magic"));
    }

    #[test]
    fn tenant_tagged_trace_roundtrips_as_v2() {
        let dir = std::env::temp_dir().join("vpnm-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t2.vpnmtrc");
        let path = path.to_str().unwrap();
        let arrivals = vec![
            Arrival { cycle: 1, flow: 4, tenant: 0 },
            Arrival { cycle: 2, flow: 5, tenant: 3 },
        ];
        write_trace(path, 10, &arrivals).unwrap();
        assert_eq!(&std::fs::read(path).unwrap()[..8], TRACE_MAGIC_V2);
        assert_eq!(read_trace(path).unwrap(), (10, arrivals));
    }
}
