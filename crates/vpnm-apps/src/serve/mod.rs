//! Live serving front-end: concurrent producers driving the
//! fabric-backed packet buffer at a paced line rate.
//!
//! This module is the operational composition of everything below it —
//! the VPNM paper's deterministic-latency promise (every read accepted at
//! cycle `t` answers at exactly `t + D`, Section 4) turned into a serving
//! loop with the moving parts a deployment has:
//!
//! ```text
//!  producers (N threads)          server thread (one epoch per turn)
//!  ───────────────────            ─────────────────────────────────────
//!  Bernoulli(load) / trace   ┌─► bounded ingress queue ──► admit ──┐
//!  flow IDs from the mix ────┤      (reject: tail drop)            │
//!  bounded lanes (park) ─────┘                                     ▼
//!                                  FlowTable slot == buffer queue index
//!                                                                  │
//!  egress ◄── deterministic t+D return ◄── VpnmPacketBuffer ◄──────┘
//!             (latency histogram)          run_epoch → fabric workers
//! ```
//!
//! **Backpressure is explicit and bounded everywhere.** A packet that
//! cannot be absorbed is *rejected* at a named, counted boundary — never
//! queued unboundedly: tail drops at the ingress queue
//! ([`ServingMetrics::ingress_drops`]), full per-flow rings
//! (`flow_queue_drops`), a full flow table (`flow_table_drops`), and the
//! astronomically-rare memory stall (`stall_drops`). Producers that
//! outrun the server *park* on their bounded hand-off lanes
//! (`producer_parks`).
//!
//! **One memory operation per interface cycle** is shared between
//! enqueue (admit) and dequeue (transmit), so the serving loop is stable
//! for offered loads up to 0.5 packets/cycle; above that the overload
//! machinery is what's being exercised.
//!
//! **Determinism.** For a fixed seed and config, every simulation-domain
//! output — admissions, drops, latencies, the memory snapshot — is
//! byte-identical at any `--workers` or pacing rate. Producer content is
//! a pure function of `(seed, producer, epoch)`; the fabric's epoch path
//! is pinned byte-identical across worker counts; wall-clock influence
//! is confined to the measurement-domain fields that
//! [`ServingMetrics::canonical`] zeroes.

mod flow_table;
mod ingress;

pub use flow_table::FlowTable;
pub use ingress::{
    read_trace, write_trace, Arrival, ArrivalSource, EpochPlan, IngressRig, TRACE_MAGIC,
    TRACE_MAGIC_V2,
};

use std::collections::VecDeque;
use std::time::Instant;

use bytes::Bytes;
use vpnm_core::{MetricsSnapshot, PipelinedMemory, ServingMetrics, VpnmConfig};
use vpnm_sim::{FineHistogram, Histogram, WallPacer};
use vpnm_workloads::packets::{payload_extend, payload_matches};
use vpnm_workloads::{HeavyTailFlows, MultiTenantMix, Tagged, TenantFlowGen, UniformAddresses};

use crate::engine::EngineOpts;
use crate::packet_buffer::{LaneEvent, VpnmPacketBuffer};

/// Flow-ID distribution for synthetic traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowMix {
    /// Uniform over `[0, space)` — maximizes distinct flows.
    Uniform {
        /// Flow-ID space size.
        space: u64,
    },
    /// Heavy-tailed (truncated-Zipf-like) over `[0, space)` — a few
    /// elephant flows carry ~half the packets
    /// ([`HeavyTailFlows`]).
    HeavyTail {
        /// Flow-ID space size.
        space: u64,
        /// Tail exponent; 1.0 ≈ Zipf(s = 1), larger is more skewed.
        skew: f64,
    },
    /// Multi-tenant blend ([`MultiTenantMix`]): `tenants - 1`
    /// well-behaved heavy-tailed tenants plus one adversarial tenant
    /// (the last ID) spending `adversary_pct` percent of the offered
    /// packets on a bank-stride sweep.
    MultiTenant {
        /// Flow-ID space size.
        space: u64,
        /// Total tenant count (the adversary is `tenants - 1`).
        tenants: u16,
        /// Percentage of offered packets from the adversary (0 = all
        /// tenants well-behaved).
        adversary_pct: u32,
        /// Bank count the adversary's stride assumes (fabric-global).
        banks: u64,
    },
}

impl FlowMix {
    /// The flow-ID space the mix draws from.
    pub fn space(&self) -> u64 {
        match self {
            FlowMix::Uniform { space }
            | FlowMix::HeavyTail { space, .. }
            | FlowMix::MultiTenant { space, .. } => *space,
        }
    }

    pub(crate) fn generator(&self, seed: u64) -> Box<dyn TenantFlowGen + Send> {
        match *self {
            FlowMix::Uniform { space } => {
                Box::new(Tagged::new(0, UniformAddresses::new(space, seed)))
            }
            FlowMix::HeavyTail { space, skew } => {
                Box::new(Tagged::new(0, HeavyTailFlows::new(space, skew, seed)))
            }
            FlowMix::MultiTenant { space, tenants, adversary_pct, banks } => {
                Box::new(MultiTenantMix::new(tenants, space, banks, adversary_pct, seed))
            }
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine/fabric topology (the shared `--engine/--channels/--select/
    /// --workers` selection).
    pub engine: EngineOpts,
    /// Memory design point each channel runs.
    pub base: VpnmConfig,
    /// Concurrent producer threads.
    pub producers: u32,
    /// Offered window in interface cycles.
    pub cycles: u64,
    /// Cycles per epoch batch (the producer hand-off and
    /// `run_epoch` unit).
    pub epoch_len: u64,
    /// Traffic source.
    pub source: ArrivalSource,
    /// Ingress-queue bound in packets; occupancy never exceeds it.
    pub queue_depth: usize,
    /// Per-flow buffer ring depth in cells.
    pub cells_per_queue: u64,
    /// Payload bytes per cell.
    pub cell_bytes: usize,
    /// Wall-clock pacing in interface cycles per second;
    /// `None` = unpaced (as fast as the host allows).
    pub pace: Option<u64>,
    /// Root seed; all simulation-domain output is a pure function of
    /// `(seed, config)`.
    pub seed: u64,
    /// Verify every transmitted payload against the deterministic
    /// pattern it was enqueued with.
    pub verify: bool,
}

impl ServeConfig {
    /// A small, fast default suitable for tests and the README demo:
    /// 4 producers at load 0.45 over a heavy-tailed 2¹⁶-flow space.
    pub fn demo() -> Self {
        ServeConfig {
            engine: EngineOpts::default(),
            base: VpnmConfig::paper_optimal(),
            producers: 4,
            cycles: 200_000,
            epoch_len: 4096,
            source: ArrivalSource::Synthetic {
                load: 0.45,
                mix: FlowMix::HeavyTail { space: 1 << 16, skew: 1.0 },
            },
            queue_depth: 512,
            cells_per_queue: 16,
            cell_bytes: 64,
            pace: None,
            seed: 42,
            verify: true,
        }
    }

    fn flow_space(&self) -> u64 {
        match &self.source {
            ArrivalSource::Synthetic { mix, .. } => mix.space(),
            ArrivalSource::Trace(t) => t.iter().map(|a| a.flow).max().map_or(1, |m| m + 1),
        }
    }
}

/// Outcome of a serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The serving counters (also attached to [`ServeReport::snapshot`]).
    pub serving: ServingMetrics,
    /// The memory engine's merged snapshot with `serving` attached,
    /// when the engine exposes metrics.
    pub snapshot: Option<MetricsSnapshot>,
    /// Packets still unaccounted after the drain budget (0 on every
    /// healthy run; non-zero means the drain phase gave up).
    pub residual: u64,
}

/// In-flight bookkeeping for one offered packet after admission.
struct PendingCell {
    arrival: u64,
    slot: u32,
    seq: u64,
    tenant: u16,
}

/// Serve-side per-tenant accounting, folded into the snapshot's
/// [`TenantSection`](vpnm_core::TenantSection) on return. Allocated only
/// when the engine selection is QoS-tracked.
struct TenantLanes {
    dropped: Vec<u64>,
    transmitted: Vec<u64>,
    latency: Vec<FineHistogram>,
}

impl TenantLanes {
    fn new(tenants: usize) -> Self {
        TenantLanes {
            dropped: vec![0; tenants],
            transmitted: vec![0; tenants],
            latency: vec![FineHistogram::new(); tenants],
        }
    }

    #[inline]
    fn lane(&self, tenant: u16) -> usize {
        usize::from(tenant).min(self.dropped.len() - 1)
    }

    #[inline]
    fn drop_one(&mut self, tenant: u16) {
        let lane = self.lane(tenant);
        self.dropped[lane] += 1;
    }
}

/// Runs one serving session end to end: spawn producers, drive the
/// buffer epoch by epoch (pacing if configured), drain, and account.
///
/// On return every offered packet is accounted exactly once:
/// `offered == transmitted + ingress_drops + flow_queue_drops +
/// flow_table_drops + stall_drops + residual`
/// (see [`ServingMetrics::conserves`]).
///
/// # Errors
///
/// Returns a message for invalid geometry, or — with
/// [`ServeConfig::verify`] — for a payload that fails verification on a
/// stall-free run (which would be a correctness bug, not congestion).
pub fn run_serve(cfg: &ServeConfig) -> Result<ServeReport, String> {
    if cfg.epoch_len == 0 || cfg.cycles == 0 {
        return Err("cycles and epoch_len must be positive".into());
    }
    if cfg.queue_depth == 0 {
        return Err("queue_depth must be positive".into());
    }
    if cfg.cell_bytes > cfg.base.cell_bytes {
        // Larger payloads would be rejected by the memory controller as
        // oversized writes on every single enqueue — catch the
        // misconfiguration here instead of silently dropping the run.
        return Err(format!(
            "cell_bytes {} exceeds the memory design point's cell size {}",
            cfg.cell_bytes, cfg.base.cell_bytes
        ));
    }
    if cfg.epoch_len.saturating_mul(cfg.cell_bytes as u64) > u64::from(u32::MAX) {
        return Err("epoch_len * cell_bytes must fit in 32 bits (payload arena offsets)".into());
    }
    let capacity_u64 = cfg.flow_space().next_power_of_two().max(2);
    let capacity = u32::try_from(capacity_u64).map_err(|_| "flow space too large".to_string())?;
    let mem = cfg.engine.build(cfg.base.clone(), cfg.seed)?;
    let mut buf = VpnmPacketBuffer::with_memory(mem, capacity, cfg.cells_per_queue)?;
    let mut table = FlowTable::new(capacity);

    let plan = EpochPlan { cycles: cfg.cycles, epoch_len: cfg.epoch_len };
    let mut rig = IngressRig::spawn(cfg.producers, &cfg.source, plan, cfg.seed);

    // Ingress entries carry their flow-table slot, resolved at
    // admission time (batched when possible). Admission order equals
    // FIFO service order, so hoisting the `slot_of` probe from service
    // to admission preserves the exact probe sequence — and with it the
    // table layout — byte for byte.
    let mut ingress: VecDeque<(u64, Option<u32>, u16)> = VecDeque::with_capacity(cfg.queue_depth);
    let mut tx_fifo: VecDeque<PendingCell> = VecDeque::new();
    let mut issued: VecDeque<PendingCell> = VecDeque::new();
    let mut tenant_lanes =
        cfg.engine.qos().map(|q| TenantLanes::new(usize::from(q.tenants.max(1))));

    let mut serving = ServingMetrics {
        producers: cfg.producers,
        paced_rate: cfg.pace.unwrap_or(0),
        queue_bound: cfg.queue_depth,
        ..ServingMetrics::default()
    };
    let mut latency = FineHistogram::new();
    let mut occupancy = Histogram::new();
    let mut stalls_seen = 0u64;

    let mut pacer = cfg.pace.map(WallPacer::new);
    let mut cycles_banked = 0u64;
    let started = Instant::now();

    // The offered window, then idle drain epochs until everything
    // admitted has retired (bounded budget: backlog + pipeline delay).
    let offered_epochs = plan.epochs();
    let mut epoch = 0u64;
    let drain_budget =
        |backlog: u64, delay: u64, epoch_len: u64| (backlog + delay).div_ceil(epoch_len) + 2;
    let mut drain_end: Option<u64> = None;
    // Reused across epochs: the event lane, the batched-slotting
    // scratch, and the payload arena — the steady state allocates one
    // arena per epoch, nothing per packet.
    let mut events: Vec<(u64, LaneEvent)> = Vec::new();
    let mut batch_flows: Vec<u64> = Vec::new();
    let mut slots_lane: Vec<Option<u32>> = Vec::new();
    let mut arena_buf: Vec<u8> = Vec::new();
    loop {
        let (start, end) = if epoch < offered_epochs {
            plan.window(epoch)
        } else {
            let done = ingress.is_empty() && tx_fifo.is_empty() && issued.is_empty();
            let budget_exhausted = drain_end.is_some_and(|e| epoch >= e);
            if done || budget_exhausted {
                break;
            }
            let start = cfg.cycles + (epoch - offered_epochs) * cfg.epoch_len;
            (start, start + cfg.epoch_len)
        };
        let len = end - start;

        let arrivals: &[Arrival] = if epoch < offered_epochs { rig.next_epoch() } else { &[] };
        if epoch + 1 == offered_epochs {
            let backlog = (ingress.len() + tx_fifo.len() + issued.len()) as u64
                + arrivals.len() as u64
                + cfg.epoch_len;
            drain_end = Some(offered_epochs + drain_budget(backlog, buf.delay(), cfg.epoch_len));
        }

        // Pace: wait until the wall clock has earned `len` more cycles.
        if let Some(pacer) = pacer.as_mut() {
            loop {
                let elapsed = started.elapsed().as_nanos() as u64;
                cycles_banked += pacer.cycles_due(elapsed);
                if cycles_banked >= len {
                    cycles_banked -= len;
                    break;
                }
                let wait = pacer.nanos_until_next(elapsed).max(1);
                std::thread::sleep(std::time::Duration::from_nanos(wait.min(5_000_000)));
            }
        }

        // When the whole epoch provably fits behind the queue bound, no
        // arrival can tail-drop, so every flow is resolved upfront in
        // one batched, prefetched table pass; otherwise fall back to
        // per-arrival probing at admission (same probe order).
        let batched = ingress.len() + arrivals.len() <= cfg.queue_depth;
        if batched && !arrivals.is_empty() {
            batch_flows.clear();
            batch_flows.extend(arrivals.iter().map(|a| a.flow));
            table.slots_of_batch(&batch_flows, &mut slots_lane);
        }

        // Schedule the epoch: one memory operation per cycle, shared
        // between egress (transmit) and admission.
        events.clear();
        let mut next_arrival = 0usize;
        for c in start..end {
            while next_arrival < arrivals.len() && arrivals[next_arrival].cycle == c {
                let a = arrivals[next_arrival];
                serving.offered += 1;
                if batched {
                    ingress.push_back((a.cycle, slots_lane[next_arrival], a.tenant));
                } else if ingress.len() >= cfg.queue_depth {
                    serving.ingress_drops += 1;
                    if let Some(t) = tenant_lanes.as_mut() {
                        t.drop_one(a.tenant);
                    }
                } else {
                    ingress.push_back((a.cycle, table.slot_of(a.flow), a.tenant));
                }
                next_arrival += 1;
            }
            occupancy.record(ingress.len() as u64);

            let offset = c - start;
            // Egress-first when the transmit backlog has caught up with
            // ingress: keeps both sides bounded and the pipe full.
            if !tx_fifo.is_empty() && tx_fifo.len() >= ingress.len() {
                let cell = tx_fifo.pop_front().expect("non-empty");
                let seq = table.note_dequeue(cell.slot);
                debug_assert_eq!(seq, cell.seq, "per-flow FIFO order");
                events.push((offset, LaneEvent::Dequeue { queue: cell.slot, tenant: cell.tenant }));
                issued.push_back(cell);
            } else if let Some(&(arrived, slot, tenant)) = ingress.front() {
                match slot {
                    None => {
                        serving.flow_table_drops += 1;
                        if let Some(t) = tenant_lanes.as_mut() {
                            t.drop_one(tenant);
                        }
                        ingress.pop_front();
                    }
                    Some(slot) if u64::from(table.occupancy(slot)) >= cfg.cells_per_queue => {
                        serving.flow_queue_drops += 1;
                        if let Some(t) = tenant_lanes.as_mut() {
                            t.drop_one(tenant);
                        }
                        ingress.pop_front();
                    }
                    Some(slot) => {
                        let seq = table.note_enqueue(slot);
                        let span = arena_buf.len() as u32;
                        payload_extend(slot, seq, cfg.cell_bytes, &mut arena_buf);
                        events.push((
                            offset,
                            LaneEvent::Enqueue {
                                queue: slot,
                                start: span,
                                end: arena_buf.len() as u32,
                                tenant,
                            },
                        ));
                        serving.admitted += 1;
                        tx_fifo.push_back(PendingCell { arrival: arrived, slot, seq, tenant });
                        ingress.pop_front();
                    }
                }
            }
            serving.transmit_backlog_hwm = serving.transmit_backlog_hwm.max(tx_fifo.len() as u64);
        }

        // One refcounted arena per epoch; every enqueue is a zero-copy
        // slice of it. Replacing (not taking) keeps the capacity hint.
        let filled = arena_buf.len();
        let arena = Bytes::from(std::mem::replace(&mut arena_buf, Vec::with_capacity(filled)));
        let report = buf.run_epoch_arena(len, &events, &arena);
        debug_assert!(report.outcomes.iter().all(Result::is_ok), "shadow occupancy is exact");
        stalls_seen += report.stalled;
        for d in report.delivered {
            // A stalled read loses its response; skip (and count) the
            // orphaned issue-side entries the same way the buffer does.
            let cell = loop {
                let front = issued.pop_front().ok_or("response without an issued dequeue")?;
                if front.slot == d.cell.queue {
                    break front;
                }
                serving.stall_drops += 1;
                if let Some(t) = tenant_lanes.as_mut() {
                    t.drop_one(front.tenant);
                }
            };
            if cfg.verify && !payload_matches(cell.slot, cell.seq, cfg.cell_bytes, &d.cell.data) {
                if stalls_seen == 0 {
                    return Err(format!(
                        "payload mismatch on stall-free run: flow slot {} seq {}",
                        cell.slot, cell.seq
                    ));
                }
                // A stalled write leaves a hole the read returns garbage
                // from; the packet was lost to the stall.
                serving.stall_drops += 1;
                if let Some(t) = tenant_lanes.as_mut() {
                    t.drop_one(cell.tenant);
                }
                continue;
            }
            serving.transmitted += 1;
            let waited = d.completed_at.saturating_sub(cell.arrival);
            latency.record(waited);
            if let Some(t) = tenant_lanes.as_mut() {
                let lane = t.lane(cell.tenant);
                t.transmitted[lane] += 1;
                t.latency[lane].record(waited);
            }
        }
        epoch += 1;
    }
    // Join first, then take the exact park total: `join` reads the
    // counters with `Acquire` after every producer thread has exited,
    // so no in-flight increment is missed at shutdown.
    serving.producer_parks = rig.join();

    // Anything still unpaired after a full drain is an orphan of a
    // stalled read.
    serving.stall_drops += buf.reconcile_lost();
    serving.stall_drops += issued.len() as u64;
    if let Some(t) = tenant_lanes.as_mut() {
        for cell in &issued {
            t.drop_one(cell.tenant);
        }
    }
    issued.clear();

    serving.flows = table.flows();
    serving.latency = latency;
    serving.ingress_occupancy = occupancy;
    serving.wall_nanos = started.elapsed().as_nanos() as u64;
    if serving.wall_nanos > 0 {
        serving.mpps = serving.transmitted as f64 / (serving.wall_nanos as f64 / 1e9) / 1e6;
    }

    let residual = (ingress.len() + tx_fifo.len()) as u64;
    debug_assert!(serving.conserves(residual), "packet conservation");
    let snapshot = buf.memory().snapshot().map(|mut s| {
        // Fold the serve-side attribution (drops, deliveries, latency)
        // into the fabric's tenant section, which already carries the
        // regulator-side issued/deferred counts.
        if let (Some(section), Some(lanes)) = (s.tenants.as_mut(), tenant_lanes.as_ref()) {
            for (i, stats) in section.per_tenant.iter_mut().enumerate() {
                if i < lanes.dropped.len() {
                    stats.dropped += lanes.dropped[i];
                    stats.transmitted += lanes.transmitted[i];
                    stats.latency.merge(&lanes.latency[i]);
                }
            }
        }
        s.with_serving(serving.clone())
    });
    Ok(ServeReport { serving, snapshot, residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpnm_core::ChannelSelect;

    fn small() -> ServeConfig {
        ServeConfig {
            base: VpnmConfig::test_roomy(),
            cycles: 50_000,
            epoch_len: 1024,
            source: ArrivalSource::Synthetic {
                load: 0.45,
                mix: FlowMix::Uniform { space: 1 << 10 },
            },
            cell_bytes: 8,
            ..ServeConfig::demo()
        }
    }

    #[test]
    fn sustained_load_transmits_every_packet() {
        let report = run_serve(&small()).unwrap();
        let s = &report.serving;
        assert!(s.offered > 20_000, "offered {}", s.offered);
        assert_eq!(s.transmitted, s.offered, "no loss below the stability bound");
        assert_eq!(s.ingress_drops + s.flow_queue_drops + s.flow_table_drops + s.stall_drops, 0);
        assert_eq!(report.residual, 0, "drain retires everything");
        assert!(s.conserves(0));
        assert_eq!(s.latency.total(), s.transmitted);
        // Every packet waits at least the deterministic pipeline delay.
        assert!(s.latency.min().unwrap() >= VpnmConfig::test_roomy().recommended_delay());
        assert!(s.flows > 900, "uniform over 1024 flows, saw {}", s.flows);
        let snap = report.snapshot.expect("engine exposes metrics");
        assert_eq!(snap.serving.as_ref().unwrap().canonical(), s.canonical());
    }

    #[test]
    fn overload_keeps_ingress_bounded_and_accounts_drops() {
        let cfg = ServeConfig {
            queue_depth: 64,
            source: ArrivalSource::Synthetic {
                load: 0.9,
                mix: FlowMix::HeavyTail { space: 1 << 10, skew: 1.0 },
            },
            ..small()
        };
        let report = run_serve(&cfg).unwrap();
        let s = &report.serving;
        assert!(s.ingress_drops > 0, "offered 0.9 > service 0.5 must tail-drop");
        assert!(s.ingress_occupancy.max().unwrap() <= 64, "occupancy never exceeds the bound");
        assert!(s.transmitted < s.offered);
        assert!(s.conserves(report.residual));
        assert_eq!(report.residual, 0);
    }

    #[test]
    fn full_flow_table_drops_new_flows() {
        let cfg = ServeConfig {
            source: ArrivalSource::Synthetic {
                load: 0.4,
                // space 16 over a 16-slot table: once all 16 slots are
                // claimed nothing drops; shrink the table via a trace
                // with more flows than slots instead.
                mix: FlowMix::Uniform { space: 16 },
            },
            cycles: 4_000,
            ..small()
        };
        // 40 distinct flows, table capacity next_pow2(40) = 64 — no table
        // drops; now force them with a trace whose flow space rounds to a
        // tiny table but carries more distinct flows than slots. The
        // trace path sizes the table from the max flow ID.
        let trace: Vec<Arrival> =
            (0..200u64).map(|i| Arrival { cycle: i * 2, flow: i % 7, tenant: 0 }).collect();
        let traced = ServeConfig {
            source: ArrivalSource::Trace(std::sync::Arc::new(trace)),
            cycles: 400,
            ..cfg.clone()
        };
        let report = run_serve(&traced).unwrap();
        assert_eq!(report.serving.flows, 7);
        assert!(report.serving.conserves(report.residual));
        // And the synthetic small-space run conserves too.
        let r2 = run_serve(&cfg).unwrap();
        assert!(r2.serving.conserves(r2.residual));
        assert_eq!(r2.serving.flows, 16);
    }

    #[test]
    fn multi_tenant_serve_attributes_every_packet_and_contains_the_adversary() {
        use crate::engine::EngineKind;
        use vpnm_core::RegulatorMode;
        let banks = u64::from(VpnmConfig::test_roomy().banks) * 2;
        let mk = |regulator| ServeConfig {
            engine: EngineOpts {
                kind: EngineKind::Fast,
                channels: 2,
                select: ChannelSelect::UniversalHash,
                tenants: 4,
                regulator,
                tenant_rate: (1, 4),
                tenant_burst: 8,
                ..EngineOpts::default()
            },
            cycles: 30_000,
            source: ArrivalSource::Synthetic {
                load: 0.45,
                mix: FlowMix::MultiTenant { space: 1 << 10, tenants: 4, adversary_pct: 40, banks },
            },
            ..small()
        };

        // Tracked but unregulated: the section is present, serve-side
        // attribution is exact, nothing is deferred.
        let tracked = run_serve(&mk(RegulatorMode::Off)).unwrap();
        let snap = tracked.snapshot.as_ref().expect("fabric exposes metrics");
        let section = snap.tenants.as_ref().expect("qos selection implies a tenant section");
        assert_eq!(section.per_tenant.len(), 4);
        let s = &tracked.serving;
        let transmitted: u64 = section.per_tenant.iter().map(|t| t.transmitted).sum();
        let dropped: u64 = section.per_tenant.iter().map(|t| t.dropped).sum();
        assert_eq!(transmitted, s.transmitted, "per-tenant deliveries sum to the total");
        assert_eq!(
            dropped,
            s.ingress_drops + s.flow_queue_drops + s.flow_table_drops + s.stall_drops,
            "per-tenant drops sum to the total"
        );
        assert!(section.per_tenant.iter().all(|t| t.deferred == 0), "off mode never defers");
        assert!(section.per_tenant.iter().all(|t| t.transmitted > 0));
        let lat_total: u64 = section.per_tenant.iter().map(|t| t.latency.total()).sum();
        assert_eq!(lat_total, s.latency.total(), "per-tenant latency covers every delivery");

        // Regulated: the adversarial tenant (last ID, 40% of offered
        // packets against a 25% budget) absorbs the deferrals; the
        // well-behaved tenants keep transmitting.
        let regulated = run_serve(&mk(RegulatorMode::Global)).unwrap();
        let rsec = regulated.snapshot.as_ref().unwrap().tenants.as_ref().expect("tenant section");
        let adv = &rsec.per_tenant[3];
        assert!(adv.deferred > 0, "the greedy tenant must be throttled");
        for (i, t) in rsec.per_tenant.iter().take(3).enumerate() {
            assert!(t.transmitted > 0, "victim t{i} starved");
            assert!(
                adv.deferred > 4 * t.deferred,
                "deferrals concentrate on the adversary: adv {} vs t{i} {}",
                adv.deferred,
                t.deferred
            );
        }
    }

    #[test]
    fn canonical_results_are_identical_across_worker_counts() {
        let base = ServeConfig {
            engine: EngineOpts {
                channels: 4,
                select: ChannelSelect::UniversalHash,
                workers: 1,
                ..EngineOpts::default()
            },
            cycles: 20_000,
            source: ArrivalSource::Synthetic {
                load: 0.45,
                mix: FlowMix::HeavyTail { space: 1 << 12, skew: 1.0 },
            },
            ..small()
        };
        let one = run_serve(&base).unwrap();
        let four = run_serve(&ServeConfig {
            engine: EngineOpts { workers: 4, ..base.engine },
            ..base.clone()
        })
        .unwrap();
        assert_eq!(one.serving.canonical(), four.serving.canonical());
        let canonical_json = |r: &ServeReport| {
            let mut snap = r.snapshot.clone().expect("engine exposes metrics");
            snap.serving = snap.serving.map(|m| m.canonical());
            snap.to_json()
        };
        assert_eq!(
            canonical_json(&one),
            canonical_json(&four),
            "simulation domain is byte-identical at any worker count"
        );
        // Pacing moves wall time only, never a packet.
        let paced = run_serve(&ServeConfig { pace: Some(20_000_000), ..base.clone() }).unwrap();
        assert_eq!(
            one.serving.canonical(),
            ServingMetrics { paced_rate: 0, ..paced.serving.canonical() },
            "pacing changes only the config echo, never a packet"
        );
        assert!(paced.serving.wall_nanos >= 900_000, "20k cycles at 20M/s is >= ~1ms");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The serving layer's two backpressure invariants, under random
        /// load (including deep overload), bounds, and seeds:
        /// ingress occupancy never exceeds the configured bound, and
        /// every offered packet is accounted exactly once.
        #[test]
        fn ingress_bounded_and_packets_conserved(
            load_pct in 5u32..100,
            queue_depth in 1usize..96,
            producers in 1u32..6,
            seed in 0u64..1000,
        ) {
            let load = f64::from(load_pct) / 100.0;
            let cfg = ServeConfig {
                engine: EngineOpts::default(),
                base: VpnmConfig::test_roomy(),
                producers,
                cycles: 6_000,
                epoch_len: 512,
                source: ArrivalSource::Synthetic {
                    load,
                    mix: FlowMix::HeavyTail { space: 256, skew: 1.0 },
                },
                queue_depth,
                cells_per_queue: 8,
                cell_bytes: 8,
                pace: None,
                seed,
                verify: true,
            };
            let report = run_serve(&cfg).unwrap();
            let s = &report.serving;
            if let Some(max) = s.ingress_occupancy.max() {
                prop_assert!(max <= queue_depth as u64,
                    "occupancy {max} exceeded bound {queue_depth}");
            }
            prop_assert!(s.conserves(report.residual),
                "offered {} != transmitted {} + drops {}+{}+{}+{} + residual {}",
                s.offered, s.transmitted, s.ingress_drops, s.flow_queue_drops,
                s.flow_table_drops, s.stall_drops, report.residual);
            prop_assert_eq!(s.latency.total(), s.transmitted);
        }
    }
}
