//! Compact per-flow accounting for the serving front-end.
//!
//! The serving loop must track millions of concurrent flows without
//! keeping a heap allocation per flow. [`FlowTable`] is a flat
//! open-addressed table: one 64-bit fingerprint plus two 32-bit packet
//! counters per slot (16 bytes), so a table sized for 2²¹ flows costs
//! 32 MB and never allocates after construction.
//!
//! The table serves double duty:
//!
//! * **Flow → queue mapping.** A slot index *is* the packet-buffer queue
//!   index, so admitting a flow's first packet implicitly claims a
//!   per-queue pointer pair and DRAM ring in the
//!   [`VpnmPacketBuffer`](crate::packet_buffer::VpnmPacketBuffer) (the
//!   paper's Section 5.4.1 head/tail pointer SRAM, scaled from the
//!   4096-interface design point to millions of flows).
//! * **Shadow occupancy.** The serving loop schedules a whole epoch of
//!   buffer events before the buffer applies them, so the buffer's own
//!   pointers are stale while the event list is built. The `in`/`out`
//!   counters advance at *schedule* time and therefore always agree with
//!   the admission decision the buffer itself will make.

use vpnm_core::prefetch_read;
use vpnm_sim::rng::{splitmix64, splitmix64_batch};

/// Flat open-addressed flow table; slot index == packet-buffer queue
/// index.
///
/// Flows are identified by a 64-bit splitmix fingerprint of the flow ID.
/// Two distinct flows colliding on the full 64-bit fingerprint *and* the
/// same probe chain would alias into one queue; at millions of flows the
/// birthday probability is ~10⁻⁶ and an alias only merges two flows'
/// FIFOs (payload verification in the serving loop would surface it).
#[derive(Debug)]
pub struct FlowTable {
    fingerprints: Vec<u64>,
    in_counts: Vec<u32>,
    out_counts: Vec<u32>,
    mask: u64,
    len: u64,
    /// Scratch lanes for [`FlowTable::slots_of_batch`], reused across
    /// epochs so the batched path allocates nothing at steady state.
    key_scratch: Vec<u64>,
    fp_scratch: Vec<u64>,
}

/// How many probes ahead [`FlowTable::slots_of_batch`] warms home
/// slots; matches the controller's playback-wheel lookahead.
const LOOKAHEAD: usize = 8;

impl FlowTable {
    /// Creates a table with `capacity` slots (a power of two ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or is < 2.
    pub fn new(capacity: u32) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= 2,
            "flow table capacity must be a power of two >= 2, got {capacity}"
        );
        let n = capacity as usize;
        FlowTable {
            fingerprints: vec![0; n],
            in_counts: vec![0; n],
            out_counts: vec![0; n],
            mask: u64::from(capacity) - 1,
            len: 0,
            key_scratch: Vec::new(),
            fp_scratch: Vec::new(),
        }
    }

    /// Slot capacity (== the packet buffer's queue count).
    pub fn capacity(&self) -> u32 {
        self.fingerprints.len() as u32
    }

    /// Distinct flows admitted so far.
    pub fn flows(&self) -> u64 {
        self.len
    }

    /// Resident size of the table in bytes (16 bytes per slot).
    pub fn bytes(&self) -> usize {
        self.fingerprints.len() * (8 + 4 + 4)
    }

    fn fingerprint(flow: u64) -> u64 {
        // 0 is the empty-slot sentinel; splitmix64 output is 0 only for
        // one input, remap it.
        splitmix64(flow ^ 0xF1D0_F1D0_F1D0_F1D0).max(1)
    }

    /// Finds the slot for `flow`, inserting it on first sight. Returns
    /// `None` when the flow is new and the table is at capacity (the
    /// caller counts a flow-table drop).
    pub fn slot_of(&mut self, flow: u64) -> Option<u32> {
        self.probe_insert(Self::fingerprint(flow))
    }

    /// Batched [`FlowTable::slot_of`] over a flow-ID slice: fingerprints
    /// are hashed through the workspace's batched SplitMix64 kernel
    /// (`splitmix64_batch`, the same AVX2 dispatch layer as
    /// `HashEngine::hash_batch` — the fingerprint function itself must
    /// stay SplitMix64 so existing snapshots remain byte-identical),
    /// home slots are software-prefetched [`LOOKAHEAD`] probes ahead,
    /// and `out` receives one dense slot per flow in order.
    ///
    /// Equivalent to calling `slot_of` per flow in sequence (insertions
    /// included), pinned by the `batch_equals_per_packet` proptest.
    pub fn slots_of_batch(&mut self, flows: &[u64], out: &mut Vec<Option<u32>>) {
        out.clear();
        out.reserve(flows.len());
        let mut keys = std::mem::take(&mut self.key_scratch);
        let mut fps = std::mem::take(&mut self.fp_scratch);
        keys.clear();
        keys.extend(flows.iter().map(|&f| f ^ 0xF1D0_F1D0_F1D0_F1D0));
        fps.resize(keys.len(), 0);
        splitmix64_batch(&keys, &mut fps);
        for i in 0..fps.len() {
            // 0 is the empty-slot sentinel, as in `fingerprint`.
            let fp = fps[i].max(1);
            if let Some(&ahead) = fps.get(i + LOOKAHEAD) {
                prefetch_read(&self.fingerprints[(ahead.max(1) & self.mask) as usize]);
            }
            out.push(self.probe_insert(fp));
        }
        self.key_scratch = keys;
        self.fp_scratch = fps;
    }

    /// Linear probe from `fp`'s home slot, claiming the first empty slot
    /// for a new fingerprint; `None` after one full wrap (table full).
    #[inline]
    fn probe_insert(&mut self, fp: u64) -> Option<u32> {
        let mut i = (fp & self.mask) as usize;
        // When full, a missing flow would probe forever: scan only until
        // we either hit the flow or wrap once.
        for _ in 0..=self.mask {
            let cur = self.fingerprints[i];
            if cur == fp {
                return Some(i as u32);
            }
            if cur == 0 {
                self.fingerprints[i] = fp;
                self.len += 1;
                return Some(i as u32);
            }
            i = (i + 1) & self.mask as usize;
        }
        None
    }

    /// Packets currently resident in `slot`'s buffer ring, as of the
    /// latest *scheduled* (not yet necessarily applied) event.
    pub fn occupancy(&self, slot: u32) -> u32 {
        self.in_counts[slot as usize] - self.out_counts[slot as usize]
    }

    /// Records a scheduled enqueue; returns the cell's sequence number
    /// within the flow (the payload seed the dequeue side verifies).
    pub fn note_enqueue(&mut self, slot: u32) -> u64 {
        let seq = u64::from(self.in_counts[slot as usize]);
        self.in_counts[slot as usize] += 1;
        seq
    }

    /// Records a scheduled dequeue; returns the sequence number of the
    /// cell that will come back (FIFO within the flow).
    pub fn note_dequeue(&mut self, slot: u32) -> u64 {
        let seq = u64::from(self.out_counts[slot as usize]);
        self.out_counts[slot as usize] += 1;
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_flows_to_stable_slots() {
        let mut t = FlowTable::new(1 << 10);
        let a = t.slot_of(17).unwrap();
        let b = t.slot_of(99_999_999).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.slot_of(17), Some(a), "repeat lookup is stable");
        assert_eq!(t.flows(), 2);
        assert!(a < t.capacity() && b < t.capacity());
    }

    #[test]
    fn counts_track_shadow_occupancy() {
        let mut t = FlowTable::new(4);
        let s = t.slot_of(7).unwrap();
        assert_eq!(t.occupancy(s), 0);
        assert_eq!(t.note_enqueue(s), 0);
        assert_eq!(t.note_enqueue(s), 1);
        assert_eq!(t.occupancy(s), 2);
        assert_eq!(t.note_dequeue(s), 0);
        assert_eq!(t.occupancy(s), 1);
    }

    #[test]
    fn full_table_rejects_new_flows_but_serves_old() {
        let mut t = FlowTable::new(4);
        let mut slots = Vec::new();
        let mut flow = 0u64;
        while slots.len() < 4 {
            if let Some(s) = t.slot_of(flow) {
                if !slots.contains(&s) {
                    slots.push(s);
                }
            }
            flow += 1;
        }
        assert_eq!(t.flows(), 4);
        assert_eq!(t.slot_of(1 << 40), None, "new flow rejected at capacity");
        for f in 0..flow {
            // every previously admitted flow still resolves
            assert!(t.slot_of(f).is_some());
        }
    }

    #[test]
    fn million_slot_table_is_compact() {
        let t = FlowTable::new(1 << 21);
        assert_eq!(t.bytes(), (1 << 21) * 16, "16 bytes/slot, 32 MB for 2^21 flows");
    }

    /// Finds a flow ID whose fingerprint homes to `slot` in a table with
    /// the given `mask`, skipping any in `taken`.
    fn flow_homing_to(slot: u64, mask: u64, taken: &[u64]) -> u64 {
        (0u64..).find(|&f| FlowTable::fingerprint(f) & mask == slot && !taken.contains(&f)).unwrap()
    }

    #[test]
    fn probing_wraps_past_slot_zero() {
        let mut t = FlowTable::new(4);
        // Two flows homing to the last slot: the second must wrap to
        // slot 0, not fall off the end of the table.
        let a = flow_homing_to(3, 3, &[]);
        let b = flow_homing_to(3, 3, &[a]);
        assert_eq!(t.slot_of(a), Some(3));
        assert_eq!(t.slot_of(b), Some(0), "collision at the top wraps to slot 0");
        assert_eq!(t.slot_of(a), Some(3), "both remain stable after the wrap");
        assert_eq!(t.slot_of(b), Some(0));
        assert_eq!(t.flows(), 2);
    }

    #[test]
    fn colliding_new_flow_on_full_table_is_rejected_after_one_wrap() {
        let mut t = FlowTable::new(4);
        let mut admitted = Vec::new();
        // Fill all four slots with flows homing to the SAME slot, so the
        // table is one maximal probe chain.
        for _ in 0..4 {
            let f = flow_homing_to(1, 3, &admitted);
            assert!(t.slot_of(f).is_some());
            admitted.push(f);
        }
        assert_eq!(t.flows(), 4);
        // A fifth flow homing to the same (occupied) slot must scan the
        // whole chain, wrap exactly once, and report the table full —
        // while every admitted flow still resolves to its slot.
        let outsider = flow_homing_to(1, 3, &admitted);
        assert_eq!(t.slot_of(outsider), None, "fingerprint collision on a full table");
        for f in &admitted {
            assert!(t.slot_of(*f).is_some());
        }
        assert_eq!(t.flows(), 4, "the rejected probe must not count a flow");
    }

    #[test]
    fn slot_reuse_after_drop_accounting() {
        let mut t = FlowTable::new(4);
        let s = t.slot_of(11).unwrap();
        // Fill the flow's ring to a bound of 2, as the serving loop does
        // before counting a flow_queue_drop (the drop itself never
        // touches the counters — only admitted cells move them).
        assert_eq!(t.note_enqueue(s), 0);
        assert_eq!(t.note_enqueue(s), 1);
        assert_eq!(t.occupancy(s), 2);
        // Transmit both; occupancy returns to zero and the slot is
        // immediately reusable with a continuing sequence.
        assert_eq!(t.note_dequeue(s), 0);
        assert_eq!(t.note_dequeue(s), 1);
        assert_eq!(t.occupancy(s), 0);
        assert_eq!(t.note_enqueue(s), 2, "sequence continues across emptiness");
        assert_eq!(t.occupancy(s), 1);
        assert_eq!(t.slot_of(11), Some(s), "the flow keeps its slot across drain");
    }

    #[test]
    fn batch_lookup_matches_scalar_on_a_small_table() {
        let flows: Vec<u64> = (0..64).map(|i| i * 31 % 40).collect();
        let mut scalar = FlowTable::new(16);
        let expect: Vec<Option<u32>> = flows.iter().map(|&f| scalar.slot_of(f)).collect();
        let mut batched = FlowTable::new(16);
        let mut out = Vec::new();
        batched.slots_of_batch(&flows, &mut out);
        assert_eq!(out, expect);
        assert_eq!(batched.flows(), scalar.flows());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `slots_of_batch` is the per-packet `slot_of` sequence, exactly
        /// — insertions, collisions, wraps, and full-table rejections
        /// included — for any flow stream and table size, in one batch
        /// or split across arbitrary batch boundaries.
        #[test]
        fn batch_equals_per_packet(
            flows in proptest::collection::vec(0u64..64, 1..200),
            cap_pow in 1u32..6,
            split in 0usize..200,
        ) {
            let capacity = 1u32 << cap_pow;
            let mut scalar = FlowTable::new(capacity);
            let expect: Vec<Option<u32>> =
                flows.iter().map(|&f| scalar.slot_of(f)).collect();

            let mut batched = FlowTable::new(capacity);
            let cut = split.min(flows.len());
            let (head, tail) = flows.split_at(cut);
            let mut out = Vec::new();
            let mut got = Vec::new();
            batched.slots_of_batch(head, &mut out);
            got.extend_from_slice(&out);
            batched.slots_of_batch(tail, &mut out);
            got.extend_from_slice(&out);

            prop_assert_eq!(got, expect);
            prop_assert_eq!(batched.flows(), scalar.flows());
        }
    }
}
