//! Compact per-flow accounting for the serving front-end.
//!
//! The serving loop must track millions of concurrent flows without
//! keeping a heap allocation per flow. [`FlowTable`] is a flat
//! open-addressed table: one 64-bit fingerprint plus two 32-bit packet
//! counters per slot (16 bytes), so a table sized for 2²¹ flows costs
//! 32 MB and never allocates after construction.
//!
//! The table serves double duty:
//!
//! * **Flow → queue mapping.** A slot index *is* the packet-buffer queue
//!   index, so admitting a flow's first packet implicitly claims a
//!   per-queue pointer pair and DRAM ring in the
//!   [`VpnmPacketBuffer`](crate::packet_buffer::VpnmPacketBuffer) (the
//!   paper's Section 5.4.1 head/tail pointer SRAM, scaled from the
//!   4096-interface design point to millions of flows).
//! * **Shadow occupancy.** The serving loop schedules a whole epoch of
//!   buffer events before the buffer applies them, so the buffer's own
//!   pointers are stale while the event list is built. The `in`/`out`
//!   counters advance at *schedule* time and therefore always agree with
//!   the admission decision the buffer itself will make.

use vpnm_sim::rng::splitmix64;

/// Flat open-addressed flow table; slot index == packet-buffer queue
/// index.
///
/// Flows are identified by a 64-bit splitmix fingerprint of the flow ID.
/// Two distinct flows colliding on the full 64-bit fingerprint *and* the
/// same probe chain would alias into one queue; at millions of flows the
/// birthday probability is ~10⁻⁶ and an alias only merges two flows'
/// FIFOs (payload verification in the serving loop would surface it).
#[derive(Debug)]
pub struct FlowTable {
    fingerprints: Vec<u64>,
    in_counts: Vec<u32>,
    out_counts: Vec<u32>,
    mask: u64,
    len: u64,
}

impl FlowTable {
    /// Creates a table with `capacity` slots (a power of two ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or is < 2.
    pub fn new(capacity: u32) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= 2,
            "flow table capacity must be a power of two >= 2, got {capacity}"
        );
        let n = capacity as usize;
        FlowTable {
            fingerprints: vec![0; n],
            in_counts: vec![0; n],
            out_counts: vec![0; n],
            mask: u64::from(capacity) - 1,
            len: 0,
        }
    }

    /// Slot capacity (== the packet buffer's queue count).
    pub fn capacity(&self) -> u32 {
        self.fingerprints.len() as u32
    }

    /// Distinct flows admitted so far.
    pub fn flows(&self) -> u64 {
        self.len
    }

    /// Resident size of the table in bytes (16 bytes per slot).
    pub fn bytes(&self) -> usize {
        self.fingerprints.len() * (8 + 4 + 4)
    }

    fn fingerprint(flow: u64) -> u64 {
        // 0 is the empty-slot sentinel; splitmix64 output is 0 only for
        // one input, remap it.
        splitmix64(flow ^ 0xF1D0_F1D0_F1D0_F1D0).max(1)
    }

    /// Finds the slot for `flow`, inserting it on first sight. Returns
    /// `None` when the flow is new and the table is at capacity (the
    /// caller counts a flow-table drop).
    pub fn slot_of(&mut self, flow: u64) -> Option<u32> {
        let fp = Self::fingerprint(flow);
        let mut i = (fp & self.mask) as usize;
        // When full, a missing flow would probe forever: scan only until
        // we either hit the flow or wrap once.
        for _ in 0..=self.mask {
            let cur = self.fingerprints[i];
            if cur == fp {
                return Some(i as u32);
            }
            if cur == 0 {
                self.fingerprints[i] = fp;
                self.len += 1;
                return Some(i as u32);
            }
            i = (i + 1) & self.mask as usize;
        }
        None
    }

    /// Packets currently resident in `slot`'s buffer ring, as of the
    /// latest *scheduled* (not yet necessarily applied) event.
    pub fn occupancy(&self, slot: u32) -> u32 {
        self.in_counts[slot as usize] - self.out_counts[slot as usize]
    }

    /// Records a scheduled enqueue; returns the cell's sequence number
    /// within the flow (the payload seed the dequeue side verifies).
    pub fn note_enqueue(&mut self, slot: u32) -> u64 {
        let seq = u64::from(self.in_counts[slot as usize]);
        self.in_counts[slot as usize] += 1;
        seq
    }

    /// Records a scheduled dequeue; returns the sequence number of the
    /// cell that will come back (FIFO within the flow).
    pub fn note_dequeue(&mut self, slot: u32) -> u64 {
        let seq = u64::from(self.out_counts[slot as usize]);
        self.out_counts[slot as usize] += 1;
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_flows_to_stable_slots() {
        let mut t = FlowTable::new(1 << 10);
        let a = t.slot_of(17).unwrap();
        let b = t.slot_of(99_999_999).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.slot_of(17), Some(a), "repeat lookup is stable");
        assert_eq!(t.flows(), 2);
        assert!(a < t.capacity() && b < t.capacity());
    }

    #[test]
    fn counts_track_shadow_occupancy() {
        let mut t = FlowTable::new(4);
        let s = t.slot_of(7).unwrap();
        assert_eq!(t.occupancy(s), 0);
        assert_eq!(t.note_enqueue(s), 0);
        assert_eq!(t.note_enqueue(s), 1);
        assert_eq!(t.occupancy(s), 2);
        assert_eq!(t.note_dequeue(s), 0);
        assert_eq!(t.occupancy(s), 1);
    }

    #[test]
    fn full_table_rejects_new_flows_but_serves_old() {
        let mut t = FlowTable::new(4);
        let mut slots = Vec::new();
        let mut flow = 0u64;
        while slots.len() < 4 {
            if let Some(s) = t.slot_of(flow) {
                if !slots.contains(&s) {
                    slots.push(s);
                }
            }
            flow += 1;
        }
        assert_eq!(t.flows(), 4);
        assert_eq!(t.slot_of(1 << 40), None, "new flow rejected at capacity");
        for f in 0..flow {
            // every previously admitted flow still resolves
            assert!(t.slot_of(f).is_some());
        }
    }

    #[test]
    fn million_slot_table_is_compact() {
        let t = FlowTable::new(1 << 21);
        assert_eq!(t.bytes(), (1 << 21) * 16, "16 bytes/slot, 32 MB for 2^21 flows");
    }
}
