//! The hole-buffer data structure of Dharmapurikar & Paxson.
//!
//! Tracks which byte ranges of a TCP stream have arrived. The contiguous
//! prefix (`next_expected`) can be scanned and released; everything beyond
//! it is a set of disjoint buffered intervals separated by *holes*.

use std::collections::BTreeMap;

/// Result of inserting one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsertOutcome {
    /// Bytes by which the in-order prefix advanced (now safe to scan).
    pub advanced: u64,
    /// Bytes of the segment that were already present (retransmission /
    /// overlap).
    pub duplicate: u64,
}

/// Per-connection reassembly state.
///
/// ```
/// use vpnm_apps::reassembly::HoleBuffer;
/// let mut hb = HoleBuffer::new();
/// // Segment [10, 20) arrives early: a hole [0, 10) forms.
/// assert_eq!(hb.insert(10, 10).advanced, 0);
/// assert_eq!(hb.holes(), vec![(0, 10)]);
/// // The hole fills: the prefix jumps to 20.
/// let out = hb.insert(0, 10);
/// assert_eq!(out.advanced, 20);
/// assert_eq!(hb.next_expected(), 20);
/// assert!(hb.holes().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HoleBuffer {
    /// First byte not yet part of the contiguous prefix.
    next_expected: u64,
    /// Out-of-order intervals strictly beyond the prefix: start → end
    /// (exclusive), disjoint and non-adjacent.
    buffered: BTreeMap<u64, u64>,
}

impl HoleBuffer {
    /// Empty state: nothing received.
    pub fn new() -> Self {
        Self::default()
    }

    /// First byte offset not yet in the in-order prefix.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }

    /// Number of tracked out-of-order intervals.
    pub fn buffered_intervals(&self) -> usize {
        self.buffered.len()
    }

    /// The current holes: gaps between the prefix and/or buffered
    /// intervals, as `(start, end)` pairs (end exclusive).
    pub fn holes(&self) -> Vec<(u64, u64)> {
        let mut holes = Vec::new();
        let mut cursor = self.next_expected;
        for (&start, &end) in &self.buffered {
            if start > cursor {
                holes.push((cursor, start));
            }
            cursor = cursor.max(end);
        }
        holes
    }

    /// Inserts a segment `[offset, offset + len)`.
    ///
    /// Returns how far the in-order prefix advanced and how many bytes
    /// were duplicates. Zero-length segments are no-ops.
    pub fn insert(&mut self, offset: u64, len: u64) -> InsertOutcome {
        if len == 0 {
            return InsertOutcome::default();
        }
        let mut start = offset;
        let end = offset + len;
        let mut duplicate = 0;
        if end <= self.next_expected {
            return InsertOutcome { advanced: 0, duplicate: len };
        }
        if start < self.next_expected {
            duplicate += self.next_expected - start;
            start = self.next_expected;
        }
        // Merge [start, end) into the buffered set, counting overlap.
        let mut merged_start = start;
        let mut merged_end = end;
        let overlapping: Vec<(u64, u64)> = self
            .buffered
            .range(..=end)
            .filter(|(_, &e)| e >= start)
            .map(|(&s, &e)| (s, e))
            .collect();
        for (s, e) in overlapping {
            duplicate += overlap(start, end, s, e);
            merged_start = merged_start.min(s);
            merged_end = merged_end.max(e);
            self.buffered.remove(&s);
        }
        self.buffered.insert(merged_start, merged_end);

        // Advance the prefix through any now-contiguous intervals.
        let before = self.next_expected;
        while let Some((&s, &e)) = self.buffered.first_key_value() {
            if s <= self.next_expected {
                self.next_expected = self.next_expected.max(e);
                self.buffered.remove(&s);
            } else {
                break;
            }
        }
        InsertOutcome { advanced: self.next_expected - before, duplicate }
    }
}

fn overlap(a1: u64, a2: u64, b1: u64, b2: u64) -> u64 {
    a2.min(b2).saturating_sub(a1.max(b1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_stream_advances_directly() {
        let mut hb = HoleBuffer::new();
        assert_eq!(hb.insert(0, 100).advanced, 100);
        assert_eq!(hb.insert(100, 50).advanced, 50);
        assert_eq!(hb.next_expected(), 150);
        assert_eq!(hb.buffered_intervals(), 0);
    }

    #[test]
    fn out_of_order_creates_and_fills_holes() {
        let mut hb = HoleBuffer::new();
        hb.insert(100, 100); // [100,200)
        hb.insert(300, 100); // [300,400)
        assert_eq!(hb.holes(), vec![(0, 100), (200, 300)]);
        hb.insert(0, 100);
        assert_eq!(hb.next_expected(), 200);
        assert_eq!(hb.holes(), vec![(200, 300)]);
        let out = hb.insert(200, 100);
        assert_eq!(out.advanced, 200); // jumps through [300,400)
        assert!(hb.holes().is_empty());
    }

    #[test]
    fn duplicates_counted() {
        let mut hb = HoleBuffer::new();
        hb.insert(0, 100);
        let out = hb.insert(50, 100); // [50,150): 50 dup, 50 new
        assert_eq!(out.duplicate, 50);
        assert_eq!(out.advanced, 50);
        let out = hb.insert(0, 150); // fully duplicate
        assert_eq!(out.duplicate, 150);
        assert_eq!(out.advanced, 0);
    }

    #[test]
    fn overlapping_out_of_order_segments_merge() {
        let mut hb = HoleBuffer::new();
        hb.insert(100, 50); // [100,150)
        hb.insert(140, 60); // [140,200): 10 dup
        assert_eq!(hb.buffered_intervals(), 1);
        assert_eq!(hb.holes(), vec![(0, 100)]);
        hb.insert(0, 100);
        assert_eq!(hb.next_expected(), 200);
    }

    #[test]
    fn segment_bridging_multiple_intervals() {
        let mut hb = HoleBuffer::new();
        hb.insert(10, 10); // [10,20)
        hb.insert(30, 10); // [30,40)
        hb.insert(50, 10); // [50,60)
        let out = hb.insert(15, 40); // [15,55): bridges all three
        assert_eq!(hb.buffered_intervals(), 1);
        assert_eq!(out.duplicate, 5 + 10 + 5);
        assert_eq!(hb.holes(), vec![(0, 10)]);
    }

    #[test]
    fn zero_length_noop() {
        let mut hb = HoleBuffer::new();
        assert_eq!(hb.insert(10, 0), InsertOutcome::default());
        assert_eq!(hb.buffered_intervals(), 0);
    }

    proptest! {
        /// Feeding the segments of [0, total) in any order always ends
        /// with a complete prefix and no holes, and total advancement
        /// equals the stream length.
        #[test]
        fn random_orderings_reassemble_completely(
            order in proptest::sample::subsequence((0usize..20).collect::<Vec<_>>(), 20),
            seg_len in 1u64..50,
        ) {
            // `order` is a permutation source; build one by rotating
            let mut segs: Vec<u64> = (0..20).map(|i| i as u64 * seg_len).collect();
            // deterministic shuffle from the sampled subsequence
            for (i, &j) in order.iter().enumerate() {
                segs.swap(i, j);
            }
            let mut hb = HoleBuffer::new();
            let mut advanced = 0;
            for &off in &segs {
                advanced += hb.insert(off, seg_len).advanced;
            }
            prop_assert_eq!(advanced, 20 * seg_len);
            prop_assert_eq!(hb.next_expected(), 20 * seg_len);
            prop_assert!(hb.holes().is_empty());
            prop_assert_eq!(hb.buffered_intervals(), 0);
        }

        /// Invariant: buffered intervals stay disjoint, sorted, and
        /// strictly beyond the prefix.
        #[test]
        fn intervals_stay_canonical(ops in proptest::collection::vec((0u64..500, 1u64..60), 1..40)) {
            let mut hb = HoleBuffer::new();
            for (off, len) in ops {
                hb.insert(off, len);
                let mut prev_end = hb.next_expected();
                for (s, e) in hb.holes() {
                    prop_assert!(s >= prev_end);
                    prop_assert!(e > s);
                    prev_end = e;
                }
            }
        }
    }
}
