//! TCP packet reassembly on VPNM (paper Section 5.4.2).
//!
//! Content inspection must scan byte streams *in order*, but an attacker
//! can split a signature across deliberately reordered TCP segments.
//! Dharmapurikar & Paxson's robust reassembly tracks, per connection, the
//! *holes* in the received stream; the paper maps that algorithm onto
//! VPNM: for every 64-byte chunk the engine performs five DRAM accesses
//! (connection record read, hole-buffer read, hole-buffer update, packet
//! write, and the eventual in-order packet read), so a memory system that
//! accepts one request per cycle sustains `clock/5 × 64 B` of scan
//! throughput — 40 Gbps at 400 MHz, "more than enough to feed current
//! generation of content inspection engines".
//!
//! * [`HoleBuffer`] — the per-connection hole-tracking data structure.
//! * [`ReassemblyEngine`] — the five-access-per-chunk engine over any
//!   [`vpnm_core::PipelinedMemory`].

pub mod engine;
pub mod hole;

pub use engine::{ReassemblyEngine, ReassemblyStats};
pub use hole::{HoleBuffer, InsertOutcome};
