//! The five-access-per-chunk reassembly engine.
//!
//! Per 64-byte chunk (paper Section 5.4.2): "one DRAM read access for
//! accessing connection record, one DRAM access for accessing the
//! corresponding hole-buffer data structure, one DRAM access to update
//! this data structure, one DRAM access to write the packet, and one DRAM
//! access to finally read the packet in future. Hence, for each 64-byte
//! packet chunk, five DRAM accesses are required." All five go through a
//! [`PipelinedMemory`], so the engine works identically on a
//! [`vpnm_core::VpnmController`] and on the [`vpnm_core::IdealMemory`]
//! oracle.

use crate::reassembly::hole::HoleBuffer;
use std::collections::VecDeque;
use vpnm_core::{LineAddr, PipelinedMemory, Request};

/// Accounting for a reassembly run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Chunks ingested (including retransmitted duplicates).
    pub chunks_ingested: u64,
    /// Memory accesses issued (all five kinds).
    pub accesses: u64,
    /// Extra cycles burned retrying stalled submissions.
    pub stall_retries: u64,
    /// Chunks delivered in order to the scanner.
    pub chunks_scanned: u64,
}

#[derive(Debug)]
struct FlowState {
    hole: HoleBuffer,
    /// In-order bytes released to the content scanner, as read back from
    /// memory.
    scanned: Vec<u8>,
    /// Next chunk index awaiting a scan read.
    scan_next_chunk: u64,
}

/// A multi-connection TCP reassembler over any pipelined memory.
///
/// The memory's cell size doubles as the chunk size: 64 B cells give the
/// paper's configuration; tests use smaller cells for speed.
#[derive(Debug)]
pub struct ReassemblyEngine<M> {
    mem: M,
    chunk_bytes: usize,
    per_flow_chunks: u64,
    flows: Vec<FlowState>,
    /// `(flow, chunk_index)` of scan reads in flight, FIFO (constant
    /// latency ⇒ responses return in issue order).
    scan_in_flight: VecDeque<(u32, u64)>,
    stats: ReassemblyStats,
}

impl<M: PipelinedMemory> ReassemblyEngine<M> {
    /// Creates an engine for `num_flows` connections with
    /// `per_flow_chunks` chunks of stream window each, over `mem` whose
    /// cells are `chunk_bytes` wide.
    ///
    /// The memory's address space is laid out as: connection records
    /// `[0, F)`, hole buffers `[F, 2F)`, packet data
    /// `[2F, 2F + F·per_flow_chunks)`.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(mem: M, num_flows: u32, per_flow_chunks: u64, chunk_bytes: usize) -> Self {
        assert!(num_flows > 0 && per_flow_chunks > 0 && chunk_bytes > 0);
        let flows = (0..num_flows)
            .map(|_| FlowState { hole: HoleBuffer::new(), scanned: Vec::new(), scan_next_chunk: 0 })
            .collect();
        ReassemblyEngine {
            mem,
            chunk_bytes,
            per_flow_chunks,
            flows,
            scan_in_flight: VecDeque::new(),
            stats: ReassemblyStats::default(),
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> &ReassemblyStats {
        &self.stats
    }

    /// Cycles elapsed on the underlying memory.
    pub fn cycles(&self) -> u64 {
        self.mem.now().as_u64()
    }

    /// The in-order scanned byte stream of `flow` so far.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn scanned(&self, flow: u32) -> &[u8] {
        &self.flows[flow as usize].scanned
    }

    /// The underlying memory (for metrics).
    pub fn memory(&self) -> &M {
        &self.mem
    }

    fn conn_addr(&self, flow: u32) -> LineAddr {
        LineAddr(u64::from(flow))
    }

    fn hole_addr(&self, flow: u32) -> LineAddr {
        LineAddr(self.flows.len() as u64 + u64::from(flow))
    }

    fn data_addr(&self, flow: u32, chunk: u64) -> LineAddr {
        let base = 2 * self.flows.len() as u64;
        LineAddr(base + u64::from(flow) * self.per_flow_chunks + chunk % self.per_flow_chunks)
    }

    /// Submits one request, retrying on stalls, collecting any responses
    /// that come due meanwhile.
    fn issue(&mut self, request: Request) {
        loop {
            let out = self.mem.tick(Some(request.clone()));
            if let Some(r) = out.response {
                self.accept_response(r);
            }
            if out.stall.is_none() {
                self.stats.accesses += 1;
                return;
            }
            self.stats.stall_retries += 1;
        }
    }

    fn accept_response(&mut self, r: vpnm_core::Response) {
        // Only scan reads target the data region; the conn-record and
        // hole-buffer reads return state the engine already holds in its
        // working registers.
        let data_base = 2 * self.flows.len() as u64;
        if r.addr.0 < data_base {
            return;
        }
        let (flow, chunk) = self
            .scan_in_flight
            .pop_front()
            .expect("data-region response implies an in-flight scan read");
        debug_assert_eq!(r.addr, self.data_addr(flow, chunk));
        self.flows[flow as usize].scanned.extend_from_slice(&r.data);
        self.stats.chunks_scanned += 1;
    }

    /// Ingests a segment of `flow` at byte `offset`.
    ///
    /// `offset` must be chunk-aligned; the final chunk may be short and is
    /// zero-padded in memory (TCP option/padding handling is out of
    /// scope). Performs the five memory accesses per chunk and issues
    /// in-order scan reads as holes fill.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range, `offset` is misaligned, or the
    /// segment overflows the per-flow window.
    pub fn submit_segment(&mut self, flow: u32, offset: u64, data: &[u8]) {
        assert!((flow as usize) < self.flows.len(), "flow {flow} out of range");
        assert_eq!(offset % self.chunk_bytes as u64, 0, "segment offset must be chunk-aligned");
        if data.is_empty() {
            return;
        }
        for (i, chunk_data) in data.chunks(self.chunk_bytes).enumerate() {
            let chunk_index = offset / self.chunk_bytes as u64 + i as u64;
            // (1) connection record lookup
            self.issue(Request::read(self.conn_addr(flow)));
            // (2) hole buffer fetch
            self.issue(Request::read(self.hole_addr(flow)));
            // engine-side hole update
            let advanced = {
                let state = &mut self.flows[flow as usize];
                let outcome = state
                    .hole
                    .insert(chunk_index * self.chunk_bytes as u64, self.chunk_bytes as u64);
                outcome.advanced
            };
            // (3) hole buffer write-back (serialized working state)
            let serialized = self.serialize_hole(flow);
            self.issue(Request::write(self.hole_addr(flow), serialized));
            // (4) packet data write
            self.issue(Request::write(
                self.data_addr(flow, chunk_index),
                bytes::Bytes::copy_from_slice(chunk_data),
            ));
            self.stats.chunks_ingested += 1;
            // (5) in-order scan reads for every chunk the prefix crossed
            if advanced > 0 {
                let next_expected = self.flows[flow as usize].hole.next_expected();
                let upto_chunk = next_expected / self.chunk_bytes as u64;
                let from = self.flows[flow as usize].scan_next_chunk;
                assert!(
                    upto_chunk - from <= self.per_flow_chunks,
                    "segment run overflows the per-flow window"
                );
                for c in from..upto_chunk {
                    self.scan_in_flight.push_back((flow, c));
                    self.issue(Request::read(self.data_addr(flow, c)));
                }
                self.flows[flow as usize].scan_next_chunk = upto_chunk;
            }
        }
    }

    /// Ticks the memory until all in-flight scan reads have returned.
    pub fn drain(&mut self) {
        let budget = (self.mem.outstanding() as u64 + 2) * self.mem.delay();
        for _ in 0..budget {
            if self.mem.outstanding() == 0 {
                break;
            }
            if let Some(r) = self.mem.tick(None).response {
                self.accept_response(r);
            }
        }
    }

    /// Serializes a flow's hole state into one cell: `next_expected`
    /// followed by as many `(start, end)` pairs as fit. (The engine's
    /// working registers remain authoritative; the write-back models the
    /// access pattern and capacity of the paper's design.)
    fn serialize_hole(&self, flow: u32) -> Vec<u8> {
        let state = &self.flows[flow as usize];
        let mut out = Vec::with_capacity(self.chunk_bytes);
        out.extend_from_slice(&state.hole.next_expected().to_le_bytes());
        for (s, e) in state.hole.holes() {
            if out.len() + 16 > self.chunk_bytes {
                break;
            }
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&e.to_le_bytes());
        }
        out.truncate(self.chunk_bytes);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpnm_core::{IdealMemory, VpnmConfig, VpnmController};
    use vpnm_workloads::packets::payload_bytes;
    use vpnm_workloads::OutOfOrderSegments;

    const CHUNK: usize = 8;

    fn vpnm_engine() -> ReassemblyEngine<VpnmController> {
        let mem = VpnmController::new(VpnmConfig::test_roomy(), 9).unwrap();
        ReassemblyEngine::new(mem, 4, 256, CHUNK)
    }

    #[test]
    fn in_order_stream_scans_identically() {
        let mut eng = vpnm_engine();
        let stream = payload_bytes(1, 0, 40 * CHUNK);
        for (i, seg) in stream.chunks(5 * CHUNK).enumerate() {
            eng.submit_segment(0, (i * 5 * CHUNK) as u64, seg);
        }
        eng.drain();
        assert_eq!(eng.scanned(0), &stream[..]);
        assert_eq!(eng.stats().chunks_scanned, 40);
    }

    #[test]
    fn out_of_order_stream_reassembles() {
        let mut eng = vpnm_engine();
        let stream = payload_bytes(2, 7, 64 * CHUNK);
        let mut segs = OutOfOrderSegments::new(&stream, 4 * CHUNK, 6, 13);
        while let Some(seg) = segs.next_segment() {
            eng.submit_segment(1, seg.offset, &seg.data);
        }
        eng.drain();
        assert_eq!(eng.scanned(1), &stream[..], "scan order must match original stream");
    }

    #[test]
    fn flows_are_isolated() {
        let mut eng = vpnm_engine();
        let a = payload_bytes(0, 0, 8 * CHUNK);
        let b = payload_bytes(1, 0, 8 * CHUNK);
        for i in 0..8 {
            eng.submit_segment(0, (i * CHUNK) as u64, &a[i * CHUNK..(i + 1) * CHUNK]);
            eng.submit_segment(2, (i * CHUNK) as u64, &b[i * CHUNK..(i + 1) * CHUNK]);
        }
        eng.drain();
        assert_eq!(eng.scanned(0), &a[..]);
        assert_eq!(eng.scanned(2), &b[..]);
    }

    #[test]
    fn retransmissions_not_double_scanned() {
        let mut eng = vpnm_engine();
        let stream = payload_bytes(3, 0, 4 * CHUNK);
        eng.submit_segment(0, 0, &stream);
        eng.submit_segment(0, 0, &stream); // full retransmission
        eng.drain();
        assert_eq!(eng.scanned(0), &stream[..]);
        assert_eq!(eng.stats().chunks_ingested, 8);
        assert_eq!(eng.stats().chunks_scanned, 4);
    }

    #[test]
    fn five_accesses_per_chunk_plus_scan() {
        let mut eng = vpnm_engine();
        let stream = payload_bytes(4, 0, 10 * CHUNK);
        eng.submit_segment(0, 0, &stream);
        eng.drain();
        // 4 accesses at ingest + 1 scan read per chunk
        assert_eq!(eng.stats().accesses, 5 * 10);
    }

    #[test]
    fn throughput_close_to_one_access_per_cycle() {
        // The paper's 40 Gbps claim rests on sustaining ~1 access/cycle:
        // 5 cycles per chunk. A single connection concentrates its
        // hole-buffer read/write pair on one hashed address (one bank), so
        // realistic multi-connection traffic is what achieves line rate —
        // interleave 4 flows as a real trace would.
        let streams: Vec<Vec<u8>> = (0..4).map(|f| payload_bytes(f, 0, 50 * CHUNK)).collect();
        let mut eng = vpnm_engine();
        for i in 0..50usize {
            for (f, stream) in streams.iter().enumerate() {
                eng.submit_segment(
                    f as u32,
                    (i * CHUNK) as u64,
                    &stream[i * CHUNK..(i + 1) * CHUNK],
                );
            }
        }
        let per_chunk = eng.cycles() as f64 / 200.0;
        assert!(
            per_chunk < 6.0,
            "cycles per chunk {per_chunk:.2} should be ≈ 5 (got stalls: {})",
            eng.stats().stall_retries
        );
        eng.drain();
        for (f, stream) in streams.iter().enumerate() {
            assert_eq!(eng.scanned(f as u32), &stream[..]);
        }
    }

    #[test]
    fn identical_behaviour_on_ideal_memory() {
        // The engine must be memory-agnostic: same scanned output on the
        // ideal pipeline.
        let stream = payload_bytes(6, 0, 32 * CHUNK);
        let mut segs = OutOfOrderSegments::new(&stream, 4 * CHUNK, 4, 21);

        let mut vpnm = vpnm_engine();
        let ideal_mem = IdealMemory::new(vpnm.memory().delay(), CHUNK);
        let mut ideal = ReassemblyEngine::new(ideal_mem, 4, 256, CHUNK);
        while let Some(seg) = segs.next_segment() {
            vpnm.submit_segment(0, seg.offset, &seg.data);
            ideal.submit_segment(0, seg.offset, &seg.data);
        }
        vpnm.drain();
        ideal.drain();
        assert_eq!(vpnm.scanned(0), ideal.scanned(0));
        assert_eq!(vpnm.scanned(0), &stream[..]);
    }

    #[test]
    fn identical_behaviour_on_a_multi_channel_fabric() {
        // Striping the reassembly store over four channels must not
        // change the scanned output — the fabric presents the same flat
        // deterministic-latency interface as a bare controller.
        use vpnm_core::fabric::{ChannelSelect, FabricConfig, VpnmFabric};

        let stream = payload_bytes(8, 0, 32 * CHUNK);
        let mut segs = OutOfOrderSegments::new(&stream, 4 * CHUNK, 4, 33);

        let config = FabricConfig {
            channels: 4,
            select: ChannelSelect::UniversalHash,
            base: VpnmConfig::test_roomy(),
            qos: None,
        };
        let fabric = VpnmFabric::new(config, 9).unwrap();
        let mut eng = ReassemblyEngine::new(fabric, 4, 256, CHUNK);
        let mut bare = vpnm_engine();
        while let Some(seg) = segs.next_segment() {
            eng.submit_segment(0, seg.offset, &seg.data);
            bare.submit_segment(0, seg.offset, &seg.data);
        }
        eng.drain();
        bare.drain();
        assert_eq!(eng.scanned(0), &stream[..]);
        assert_eq!(eng.scanned(0), bare.scanned(0));
        let snap = eng.memory().merged_snapshot().expect("fabric keeps metrics");
        assert_eq!(snap.channels, 4);
        assert!(snap.metrics.reads_accepted > 0 && snap.metrics.writes_accepted > 0);
    }

    #[test]
    #[should_panic(expected = "chunk-aligned")]
    fn misaligned_offset_rejected() {
        let mut eng = vpnm_engine();
        eng.submit_segment(0, 3, &[1, 2, 3]);
    }
}
