//! Packet buffering on VPNM (paper Section 5.4.1).
//!
//! Routers buffer roughly `2·R·T` of traffic (line rate × round-trip
//! time) — 4 GB at 160 Gbps — which only DRAM can hold. Prior schemes
//! fight bank conflicts with per-queue SRAM cell caches and bank-aware
//! scheduling; on VPNM the problem disappears: "Instead of keeping large
//! head and tail SRAMs to store packets, we just need to store the head
//! and tail pointers of each queue in SRAM." Every cell write goes to the
//! queue's tail address, every read to its head address, and the
//! controller's universal hash spreads those addresses over banks
//! regardless of the queue access pattern.

use bytes::Bytes;
use std::collections::VecDeque;
use std::fmt;
use vpnm_core::{
    FabricConfig, LineAddr, PipelinedMemory, Request, StallKind, TenantId, VpnmConfig,
    VpnmController, VpnmFabric,
};

/// One interface event presented to a packet buffer per cell slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferEvent {
    /// Append a cell to a queue.
    Enqueue {
        /// Queue (interface) index.
        queue: u32,
        /// Cell payload.
        cell: Vec<u8>,
    },
    /// Remove the oldest cell of a queue (data arrives `D` cycles later).
    Dequeue {
        /// Queue (interface) index.
        queue: u32,
    },
}

/// One scheduled event in an arena-backed epoch lane (see
/// [`VpnmPacketBuffer::run_epoch_arena`]): 16 bytes, `Copy`, with
/// enqueue payloads carried as byte spans into the epoch's shared
/// arena instead of owned `Vec`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneEvent {
    /// Append `arena[start..end]` as a cell on `queue`.
    Enqueue {
        /// Queue (interface) index.
        queue: u32,
        /// Payload start offset into the epoch arena.
        start: u32,
        /// Payload end offset into the epoch arena.
        end: u32,
        /// Tenant the write is issued as (0 = single-tenant host).
        tenant: u16,
    },
    /// Remove the oldest cell of a queue (data arrives `D` cycles later).
    Dequeue {
        /// Queue (interface) index.
        queue: u32,
        /// Tenant the read is issued as (0 = single-tenant host).
        tenant: u16,
    },
}

/// A dequeued cell delivered at its deterministic deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DequeuedCell {
    /// The queue it came from.
    pub queue: u32,
    /// The cell payload (refcounted; cloning does not copy).
    pub data: bytes::Bytes,
}

/// Why a buffer event was rejected this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// The target queue has no room for another cell.
    QueueFull,
    /// The target queue has no cells to dequeue.
    QueueEmpty,
    /// The memory controller stalled (retry next cycle).
    MemoryStall(StallKind),
    /// The scheme's internal scheduling structures are saturated (reorder
    /// window, pending pool, cell caches, or transfer channel) — used by
    /// the baseline models; VPNM itself reports
    /// [`BufferError::MemoryStall`] instead.
    Backpressure,
    /// The requested cell is still in DRAM and not yet staged for reading
    /// (baseline models with SRAM cell caches); retry shortly.
    NotReady,
    /// Queue index out of range.
    BadQueue,
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::QueueFull => f.write_str("queue full"),
            BufferError::QueueEmpty => f.write_str("queue empty"),
            BufferError::MemoryStall(k) => write!(f, "memory stall: {k}"),
            BufferError::Backpressure => f.write_str("scheduling backpressure"),
            BufferError::NotReady => f.write_str("cell not staged yet"),
            BufferError::BadQueue => f.write_str("queue index out of range"),
        }
    }
}

impl std::error::Error for BufferError {}

/// Accounting for a packet buffer run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketBufferStats {
    /// Cells enqueued.
    pub enqueued: u64,
    /// Dequeue operations accepted.
    pub dequeued: u64,
    /// Cells delivered.
    pub delivered: u64,
    /// Events rejected by a memory stall.
    pub memory_stalls: u64,
    /// Events rejected because a queue was full/empty.
    pub queue_rejections: u64,
    /// Dequeues that never produced a response because their read stalled
    /// inside an epoch-batched run ([`VpnmPacketBuffer::run_epoch`]
    /// pre-commits pointer movement, so a stalled read becomes a lost
    /// cell, not a retry). Always 0 on the per-tick path, and
    /// astronomically rare on the epoch path at line rate — the paper
    /// sizes the pipeline so the memory never pushes back.
    pub lost_reads: u64,
}

/// One delivered cell from an epoch-batched run, tagged with the
/// interface cycle it came due (for latency-to-deterministic-return
/// accounting at the serving layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochDelivery {
    /// The delivered cell.
    pub cell: DequeuedCell,
    /// Absolute interface cycle the response was delivered.
    pub completed_at: u64,
}

/// What happened during one [`VpnmPacketBuffer::run_epoch`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BufferEpochReport {
    /// Per-event outcome, aligned with the input slice: `Ok` means the
    /// event was issued to memory (its pointer movement is committed),
    /// `Err` carries the same rejection the per-tick path would have
    /// returned (the cycle ran idle instead).
    pub outcomes: Vec<Result<(), BufferError>>,
    /// Cells that came due during the epoch, in delivery order.
    pub delivered: Vec<EpochDelivery>,
    /// Memory stalls inside the epoch (each is a lost event under the
    /// epoch path's no-retry semantics).
    pub stalled: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct QueuePointers {
    /// Monotone head counter (cells consumed).
    head: u64,
    /// Monotone tail counter (cells produced).
    tail: u64,
}

/// A multi-queue packet buffer backed by any [`PipelinedMemory`] engine
/// (a bare [`VpnmController`] by default, or a multi-channel
/// [`VpnmFabric`] via [`VpnmPacketBuffer::new_fabric`]).
///
/// Queue `q` owns the address region `[q·C, (q+1)·C)` (C =
/// `cells_per_queue`) used as a ring; only the two pointer counters per
/// queue live "in SRAM".
///
/// ```
/// use vpnm_apps::packet_buffer::{BufferEvent, VpnmPacketBuffer};
/// use vpnm_core::VpnmConfig;
///
/// let mut buf = VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 16, 64, 7).unwrap();
/// buf.tick(Some(BufferEvent::Enqueue { queue: 3, cell: b"abc".to_vec() })).unwrap();
/// buf.tick(Some(BufferEvent::Dequeue { queue: 3 })).unwrap();
/// let mut out = None;
/// for _ in 0..buf.delay() {
///     out = out.or(buf.tick(None).unwrap());
/// }
/// assert_eq!(&out.unwrap().data[..3], b"abc");
/// ```
#[derive(Debug)]
pub struct VpnmPacketBuffer<M: PipelinedMemory = VpnmController> {
    mem: M,
    queues: Vec<QueuePointers>,
    cells_per_queue: u64,
    /// Queue index for each in-flight dequeue, FIFO by response order
    /// (responses arrive in issue order because latency is constant).
    in_flight: VecDeque<u32>,
    /// Cells whose response arrived on a cycle that could not return them
    /// (a rejected event); handed out on the next successful tick.
    pending: VecDeque<DequeuedCell>,
    stats: PacketBufferStats,
}

/// Checks that the queue regions fit an `addr_bits`-wide address space.
fn check_region(num_queues: u32, cells_per_queue: u64, addr_bits: u32) -> Result<(), String> {
    if num_queues == 0 || cells_per_queue == 0 {
        return Err("need at least one queue and one cell per queue".into());
    }
    let needed =
        u64::from(num_queues).checked_mul(cells_per_queue).ok_or("queue region overflow")?;
    let space = 1u64 << addr_bits;
    if needed > space {
        return Err(format!(
            "{num_queues} queues × {cells_per_queue} cells needs {needed} addresses, \
             but the controller has only {space}"
        ));
    }
    Ok(())
}

impl VpnmPacketBuffer {
    /// Creates a buffer with `num_queues` queues of `cells_per_queue`
    /// cells each on a VPNM controller built from `config`.
    ///
    /// # Errors
    ///
    /// Returns an error if the config is invalid or the queue regions do
    /// not fit the controller's address space.
    pub fn new(
        config: VpnmConfig,
        num_queues: u32,
        cells_per_queue: u64,
        seed: u64,
    ) -> Result<Self, String> {
        check_region(num_queues, cells_per_queue, config.addr_bits)?;
        Self::with_memory(VpnmController::new(config, seed)?, num_queues, cells_per_queue)
    }
}

impl VpnmPacketBuffer<VpnmFabric> {
    /// Creates a buffer striped over a multi-channel [`VpnmFabric`]
    /// built from `fabric_config`.
    ///
    /// # Errors
    ///
    /// Returns an error if the fabric config is invalid or the queue
    /// regions do not fit the fabric's (pre-split) address space.
    pub fn new_fabric(
        fabric_config: FabricConfig,
        num_queues: u32,
        cells_per_queue: u64,
        seed: u64,
    ) -> Result<Self, String> {
        check_region(num_queues, cells_per_queue, fabric_config.base.addr_bits)?;
        Self::with_memory(VpnmFabric::new(fabric_config, seed)?, num_queues, cells_per_queue)
    }
}

impl<M: PipelinedMemory> VpnmPacketBuffer<M> {
    /// Wraps an already-built memory engine. The caller is responsible
    /// for sizing: addresses up to `num_queues · cells_per_queue` must be
    /// valid in `mem`, or enqueues will surface
    /// [`BufferError::MemoryStall`] rejections.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_queues` or `cells_per_queue` is zero, or
    /// their product overflows.
    pub fn with_memory(mem: M, num_queues: u32, cells_per_queue: u64) -> Result<Self, String> {
        if num_queues == 0 || cells_per_queue == 0 {
            return Err("need at least one queue and one cell per queue".into());
        }
        u64::from(num_queues).checked_mul(cells_per_queue).ok_or("queue region overflow")?;
        Ok(VpnmPacketBuffer {
            mem,
            queues: vec![QueuePointers::default(); num_queues as usize],
            cells_per_queue,
            in_flight: VecDeque::new(),
            pending: VecDeque::new(),
            stats: PacketBufferStats::default(),
        })
    }

    /// The deterministic dequeue latency `D` in cycles.
    pub fn delay(&self) -> u64 {
        self.mem.delay()
    }

    /// Number of queues.
    pub fn num_queues(&self) -> u32 {
        self.queues.len() as u32
    }

    /// Cells currently held by `queue`.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn occupancy(&self, queue: u32) -> u64 {
        let q = &self.queues[queue as usize];
        q.tail - q.head
    }

    /// Run statistics.
    pub fn stats(&self) -> &PacketBufferStats {
        &self.stats
    }

    /// The underlying memory engine (for stall/merge metrics).
    pub fn memory(&self) -> &M {
        &self.mem
    }

    /// Pointer SRAM requirement in bytes: two counters of
    /// `ceil(log2 C)+1` bits per queue (one wrap bit), as in the paper's
    /// "4096 \[queues\] with an SRAM size of 32 KB" sizing.
    pub fn pointer_sram_bytes(&self) -> u64 {
        let ptr_bits = u64::from(64 - (self.cells_per_queue.max(2) - 1).leading_zeros()) + 1;
        (self.queues.len() as u64 * 2 * ptr_bits).div_ceil(8)
    }

    fn cell_addr(&self, queue: u32, counter: u64) -> LineAddr {
        LineAddr(u64::from(queue) * self.cells_per_queue + counter % self.cells_per_queue)
    }

    /// Advances one cell slot: optionally applies an event and returns a
    /// delivered cell if one is due.
    ///
    /// # Errors
    ///
    /// Rejection reasons leave all pointers unchanged; the caller may
    /// retry the same event next cycle (the clock still advanced, and any
    /// cell that came due during the rejected cycle is returned by the
    /// next accepted tick).
    pub fn tick(
        &mut self,
        event: Option<BufferEvent>,
    ) -> Result<Option<DequeuedCell>, BufferError> {
        let (request, action) = match event {
            None => (None, Action::None),
            Some(BufferEvent::Enqueue { queue, cell }) => {
                let q = *self.queues.get(queue as usize).ok_or(BufferError::BadQueue)?;
                if q.tail - q.head >= self.cells_per_queue {
                    self.stats.queue_rejections += 1;
                    // still burn the cycle so time advances uniformly
                    self.pump(None);
                    return Err(BufferError::QueueFull);
                }
                let addr = self.cell_addr(queue, q.tail);
                (Some(Request::write(addr, cell)), Action::Enqueue(queue))
            }
            Some(BufferEvent::Dequeue { queue }) => {
                let q = *self.queues.get(queue as usize).ok_or(BufferError::BadQueue)?;
                if q.tail == q.head {
                    self.stats.queue_rejections += 1;
                    self.pump(None);
                    return Err(BufferError::QueueEmpty);
                }
                let addr = self.cell_addr(queue, q.head);
                (Some(Request::read(addr)), Action::Dequeue(queue))
            }
        };
        match self.pump(request) {
            Some(kind) => {
                self.stats.memory_stalls += 1;
                Err(BufferError::MemoryStall(kind))
            }
            None => {
                match action {
                    Action::Enqueue(queue) => {
                        self.queues[queue as usize].tail += 1;
                        self.stats.enqueued += 1;
                    }
                    Action::Dequeue(queue) => {
                        self.queues[queue as usize].head += 1;
                        self.in_flight.push_back(queue);
                        self.stats.dequeued += 1;
                    }
                    Action::None => {}
                }
                Ok(self.pending.pop_front())
            }
        }
    }

    /// Pairs one memory response with its in-flight dequeue entry,
    /// skipping (and counting as lost) orphan entries left by reads that
    /// stalled inside an epoch-batched run. On the pure per-tick path the
    /// front entry always matches and the loop runs once.
    fn pair_response_queue(&mut self, addr: u64) -> u32 {
        let rq = (addr / self.cells_per_queue) as u32;
        loop {
            let front =
                self.in_flight.pop_front().expect("a response implies an in-flight dequeue");
            if front == rq {
                return rq;
            }
            self.stats.lost_reads += 1;
        }
    }

    /// Runs one memory cycle, banking any due response into the pending
    /// delivery queue; returns the stall, if the submission was rejected.
    fn pump(&mut self, request: Option<Request>) -> Option<StallKind> {
        let out = self.mem.tick(request);
        if let Some(r) = out.response {
            let queue = self.pair_response_queue(r.addr.0);
            self.stats.delivered += 1;
            self.pending.push_back(DequeuedCell { queue, data: r.data });
        }
        out.stall
    }

    /// Runs `len` interface cycles in one epoch-batched call, applying at
    /// most one event per cycle — the serving front-end's batch front
    /// door, and the only packet-buffer drive mode that reaches a
    /// fabric's parallel `run_epoch` worker path.
    ///
    /// `events` holds `(cycle_offset, event)` pairs with offsets strictly
    /// increasing and `< len`; offsets with no entry run idle. Admission
    /// checks (queue bounds, range) are applied at schedule time against
    /// the same pointer state the per-tick path would see, so the
    /// per-event outcomes are exact. Accepted events *pre-commit* their
    /// pointer movement; in exchange, a memory stall inside the epoch is
    /// a lost event rather than a retry (a stalled read surfaces in
    /// [`PacketBufferStats::lost_reads`] when its orphan in-flight entry
    /// is skipped, a stalled write as a cell that reads back empty).
    /// Stall-free epochs — the designed-for regime at line rate — are
    /// byte-equivalent to driving [`VpnmPacketBuffer::tick`] cycle by
    /// cycle.
    ///
    /// Deliveries are returned directly (with their due cycle) rather
    /// than through the per-tick pending queue.
    ///
    /// # Panics
    ///
    /// Panics if offsets are not strictly increasing or reach `len`.
    pub fn run_epoch(&mut self, len: u64, events: &[(u64, BufferEvent)]) -> BufferEpochReport {
        let mut report = BufferEpochReport {
            outcomes: Vec::with_capacity(events.len()),
            ..BufferEpochReport::default()
        };
        let mut sparse: Vec<(u64, Request)> = Vec::with_capacity(events.len());
        let mut prev: Option<u64> = None;
        for (offset, event) in events {
            Self::check_offset(*offset, len, &mut prev);
            let outcome = match event {
                BufferEvent::Enqueue { queue, cell } => self.admit_enqueue(*queue).map(|addr| {
                    sparse.push((*offset, Request::write(addr, cell.clone())));
                }),
                BufferEvent::Dequeue { queue } => self.admit_dequeue(*queue).map(|addr| {
                    sparse.push((*offset, Request::read(addr)));
                }),
            };
            if outcome.is_err() {
                self.stats.queue_rejections += 1;
            }
            report.outcomes.push(outcome);
        }
        self.finish_epoch(len, sparse, &mut report);
        report
    }

    /// Arena-backed variant of [`VpnmPacketBuffer::run_epoch`]: event
    /// payloads are `(start, end)` byte spans into one shared `arena`
    /// buffer instead of per-event `Vec`s, so a whole epoch of enqueues
    /// costs one allocation (the arena) rather than one per cell — each
    /// span becomes a zero-copy [`Bytes::slice`] reference. Semantics
    /// (admission checks, outcomes, stall accounting, deliveries) are
    /// byte-identical to `run_epoch` with the equivalent expanded
    /// events, pinned by the `arena_epoch_matches_event_epoch` proptest.
    ///
    /// # Panics
    ///
    /// Panics if offsets are not strictly increasing or reach `len`, or
    /// if an enqueue span falls outside `arena`.
    pub fn run_epoch_arena(
        &mut self,
        len: u64,
        events: &[(u64, LaneEvent)],
        arena: &Bytes,
    ) -> BufferEpochReport {
        let mut report = BufferEpochReport {
            outcomes: Vec::with_capacity(events.len()),
            ..BufferEpochReport::default()
        };
        let mut sparse: Vec<(u64, Request)> = Vec::with_capacity(events.len());
        let mut prev: Option<u64> = None;
        for &(offset, event) in events {
            Self::check_offset(offset, len, &mut prev);
            let outcome = match event {
                LaneEvent::Enqueue { queue, start, end, tenant } => {
                    self.admit_enqueue(queue).map(|addr| {
                        let data = arena.slice(start as usize..end as usize);
                        sparse.push((offset, Request::write_as(TenantId(tenant), addr, data)));
                    })
                }
                LaneEvent::Dequeue { queue, tenant } => self.admit_dequeue(queue).map(|addr| {
                    sparse.push((offset, Request::read_as(TenantId(tenant), addr)));
                }),
            };
            if outcome.is_err() {
                self.stats.queue_rejections += 1;
            }
            report.outcomes.push(outcome);
        }
        self.finish_epoch(len, sparse, &mut report);
        report
    }

    #[inline]
    fn check_offset(offset: u64, len: u64, prev: &mut Option<u64>) {
        assert!(offset < len, "event offset {offset} outside epoch of {len}");
        assert!(prev.is_none_or(|p| p < offset), "event offsets must strictly increase");
        *prev = Some(offset);
    }

    /// Admission-checks an enqueue at schedule time against the shadow
    /// pointers, committing the tail move; returns the cell address.
    #[inline]
    fn admit_enqueue(&mut self, queue: u32) -> Result<LineAddr, BufferError> {
        match self.queues.get(queue as usize).copied() {
            None => Err(BufferError::BadQueue),
            Some(q) if q.tail - q.head >= self.cells_per_queue => Err(BufferError::QueueFull),
            Some(q) => {
                let addr = self.cell_addr(queue, q.tail);
                self.queues[queue as usize].tail += 1;
                self.stats.enqueued += 1;
                Ok(addr)
            }
        }
    }

    /// Admission-checks a dequeue at schedule time, committing the head
    /// move and the in-flight entry; returns the cell address.
    #[inline]
    fn admit_dequeue(&mut self, queue: u32) -> Result<LineAddr, BufferError> {
        match self.queues.get(queue as usize).copied() {
            None => Err(BufferError::BadQueue),
            Some(q) if q.tail == q.head => Err(BufferError::QueueEmpty),
            Some(q) => {
                let addr = self.cell_addr(queue, q.head);
                self.queues[queue as usize].head += 1;
                self.in_flight.push_back(queue);
                self.stats.dequeued += 1;
                Ok(addr)
            }
        }
    }

    /// Runs the admitted request lane through the memory and pairs the
    /// epoch's responses into the report.
    fn finish_epoch(
        &mut self,
        len: u64,
        sparse: Vec<(u64, Request)>,
        report: &mut BufferEpochReport,
    ) {
        // A full epoch — one accepted event on every cycle, which is the
        // steady state at line rate — needs no sparse gap-jumping at all:
        // strictly increasing offsets below `len` that number `len` are
        // exactly `0..len`, so the span goes through the dense
        // batch-issue door (batched hashing/routing, no skip machinery).
        let run = if sparse.len() as u64 == len {
            let dense: Vec<Request> = sparse.into_iter().map(|(_, req)| req).collect();
            self.mem.issue_batch(&dense)
        } else {
            self.mem.run_epoch_sparse(len, &sparse)
        };
        report.stalled = run.stalled;
        self.stats.memory_stalls += run.stalled;
        report.delivered.reserve(run.responses.len());
        for r in run.responses {
            let queue = self.pair_response_queue(r.addr.0);
            self.stats.delivered += 1;
            report.delivered.push(EpochDelivery {
                cell: DequeuedCell { queue, data: r.data },
                completed_at: r.completed_at.as_u64(),
            });
        }
    }

    /// In-flight dequeues awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// After the memory is fully drained (`outstanding() == 0`), any
    /// entries still in the in-flight FIFO are orphans of stalled
    /// epoch-path reads; this pops and counts them as
    /// [`PacketBufferStats::lost_reads`], returning how many there were.
    pub fn reconcile_lost(&mut self) -> u64 {
        debug_assert_eq!(self.mem.outstanding(), 0, "reconcile before drain");
        let lost = self.in_flight.len() as u64;
        self.stats.lost_reads += lost;
        self.in_flight.clear();
        lost
    }

    /// Ticks with no events until every in-flight dequeue has been
    /// delivered.
    pub fn drain(&mut self) -> Vec<DequeuedCell> {
        let mut out = Vec::new();
        let budget = (self.in_flight.len() as u64 + 2) * self.delay();
        for _ in 0..budget {
            if self.in_flight.is_empty() && self.pending.is_empty() {
                break;
            }
            if let Ok(Some(cell)) = self.tick(None) {
                out.push(cell);
            }
        }
        out.extend(self.pending.drain(..));
        out
    }
}

#[derive(Debug, Clone, Copy)]
enum Action {
    None,
    Enqueue(u32),
    Dequeue(u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpnm_workloads::packets::payload_bytes;

    fn buffer() -> VpnmPacketBuffer {
        VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 8, 32, 5).unwrap()
    }

    #[test]
    fn fifo_order_per_queue() {
        let mut buf = buffer();
        for seq in 0..10u64 {
            buf.tick(Some(BufferEvent::Enqueue { queue: 2, cell: payload_bytes(2, seq, 8) }))
                .unwrap();
        }
        assert_eq!(buf.occupancy(2), 10);
        let mut got = Vec::new();
        for _ in 0..10 {
            got.extend(buf.tick(Some(BufferEvent::Dequeue { queue: 2 })).unwrap());
        }
        got.extend(buf.drain());
        assert_eq!(got.len(), 10);
        for (seq, cell) in got.iter().enumerate() {
            assert_eq!(cell.queue, 2);
            assert_eq!(cell.data, payload_bytes(2, seq as u64, 8));
        }
        assert_eq!(buf.occupancy(2), 0);
    }

    #[test]
    fn queues_are_independent() {
        let mut buf = buffer();
        buf.tick(Some(BufferEvent::Enqueue { queue: 0, cell: vec![0xA] })).unwrap();
        buf.tick(Some(BufferEvent::Enqueue { queue: 1, cell: vec![0xB] })).unwrap();
        buf.tick(Some(BufferEvent::Dequeue { queue: 1 })).unwrap();
        buf.tick(Some(BufferEvent::Dequeue { queue: 0 })).unwrap();
        let cells = buf.drain();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].queue, 1);
        assert_eq!(cells[0].data[0], 0xB);
        assert_eq!(cells[1].queue, 0);
        assert_eq!(cells[1].data[0], 0xA);
    }

    #[test]
    fn empty_and_full_rejections() {
        let mut buf = VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 2, 2, 1).unwrap();
        assert_eq!(
            buf.tick(Some(BufferEvent::Dequeue { queue: 0 })).unwrap_err(),
            BufferError::QueueEmpty
        );
        buf.tick(Some(BufferEvent::Enqueue { queue: 0, cell: vec![1] })).unwrap();
        buf.tick(Some(BufferEvent::Enqueue { queue: 0, cell: vec![2] })).unwrap();
        assert_eq!(
            buf.tick(Some(BufferEvent::Enqueue { queue: 0, cell: vec![3] })).unwrap_err(),
            BufferError::QueueFull
        );
        assert_eq!(buf.stats().queue_rejections, 2);
    }

    #[test]
    fn bad_queue_rejected() {
        let mut buf = buffer();
        assert_eq!(
            buf.tick(Some(BufferEvent::Dequeue { queue: 99 })).unwrap_err(),
            BufferError::BadQueue
        );
    }

    #[test]
    fn ring_reuse_wraps_cleanly() {
        let mut buf = VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 1, 4, 2).unwrap();
        // push/pop 20 cells through a 4-cell ring
        let mut delivered = Vec::new();
        for seq in 0..20u64 {
            buf.tick(Some(BufferEvent::Enqueue { queue: 0, cell: payload_bytes(0, seq, 8) }))
                .unwrap();
            delivered.extend(buf.tick(Some(BufferEvent::Dequeue { queue: 0 })).unwrap());
        }
        delivered.extend(buf.drain());
        assert_eq!(delivered.len(), 20);
        for (seq, cell) in delivered.iter().enumerate() {
            assert_eq!(cell.data, payload_bytes(0, seq as u64, 8), "cell {seq}");
        }
    }

    #[test]
    fn pointer_sram_matches_paper_sizing() {
        // Paper: 4096 queues fit in ~32 KB of pointer SRAM.
        let buf = VpnmPacketBuffer::new(
            VpnmConfig { addr_bits: 32, ..VpnmConfig::paper_optimal() },
            4096,
            1 << 20,
            0,
        )
        .unwrap();
        let kb = buf.pointer_sram_bytes() as f64 / 1024.0;
        assert!((16.0..=48.0).contains(&kb), "pointer SRAM {kb} KB should be ~32 KB");
    }

    #[test]
    fn region_overflow_rejected() {
        let err = VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 1 << 16, 1 << 16, 0).unwrap_err();
        assert!(err.contains("addresses"));
    }

    #[test]
    fn fabric_backed_buffer_preserves_fifo_and_latency() {
        use vpnm_core::fabric::ChannelSelect;

        let config = FabricConfig {
            channels: 4,
            select: ChannelSelect::UniversalHash,
            base: VpnmConfig::test_roomy(),
            qos: None,
        };
        let mut buf = VpnmPacketBuffer::new_fabric(config, 8, 32, 5).unwrap();
        assert_eq!(buf.memory().num_channels(), 4);
        for seq in 0..10u64 {
            buf.tick(Some(BufferEvent::Enqueue { queue: 2, cell: payload_bytes(2, seq, 8) }))
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            got.extend(buf.tick(Some(BufferEvent::Dequeue { queue: 2 })).unwrap());
        }
        got.extend(buf.drain());
        assert_eq!(got.len(), 10);
        for (seq, cell) in got.iter().enumerate() {
            assert_eq!(cell.queue, 2);
            assert_eq!(cell.data, payload_bytes(2, seq as u64, 8));
        }
        // The merged snapshot spans all four channels and records every
        // memory operation the buffer issued (10 writes + 10 reads).
        let snap = buf.memory().merged_snapshot().expect("fabric keeps metrics");
        assert_eq!(snap.channels, 4);
        assert_eq!(snap.metrics.reads_accepted, 10);
        assert_eq!(snap.metrics.writes_accepted, 10);
    }

    #[test]
    fn single_channel_fabric_buffer_matches_bare_buffer() {
        let mut bare = buffer();
        let mut fab =
            VpnmPacketBuffer::new_fabric(FabricConfig::single(VpnmConfig::test_roomy()), 8, 32, 5)
                .unwrap();
        for seq in 0..6u64 {
            let ev = BufferEvent::Enqueue { queue: 1, cell: payload_bytes(1, seq, 8) };
            assert_eq!(bare.tick(Some(ev.clone())).unwrap(), fab.tick(Some(ev)).unwrap());
        }
        for _ in 0..6 {
            let ev = BufferEvent::Dequeue { queue: 1 };
            assert_eq!(bare.tick(Some(ev.clone())).unwrap(), fab.tick(Some(ev)).unwrap());
        }
        assert_eq!(bare.drain(), fab.drain());
        assert_eq!(bare.stats(), fab.stats());
    }

    #[test]
    fn epoch_path_matches_tick_path() {
        let mut tick_buf = buffer();
        let mut epoch_buf = buffer();

        // 40 cycles: enqueue on even cycles, dequeue on cycles ≡ 1 (mod 4),
        // idle otherwise; includes a premature dequeue rejection at cycle 1.
        let mut events = Vec::new();
        let mut seq = 0u64;
        for offset in 0..40u64 {
            if offset % 2 == 0 {
                events.push((
                    offset,
                    BufferEvent::Enqueue { queue: 3, cell: payload_bytes(3, seq, 8) },
                ));
                seq += 1;
            } else if offset % 4 == 1 {
                events.push((offset, BufferEvent::Dequeue { queue: 3 }));
            }
        }

        let mut tick_outcomes = Vec::new();
        let mut tick_cells = Vec::new();
        let mut it = events.iter().peekable();
        for offset in 0..40u64 {
            let ev = match it.peek() {
                Some((o, ev)) if *o == offset => {
                    it.next();
                    Some(ev.clone())
                }
                _ => None,
            };
            let is_event = ev.is_some();
            match tick_buf.tick(ev) {
                Ok(cell) => {
                    if is_event {
                        tick_outcomes.push(Ok(()));
                    }
                    tick_cells.extend(cell);
                }
                Err(e) => tick_outcomes.push(Err(e)),
            }
        }
        tick_cells.extend(tick_buf.drain());

        let report = epoch_buf.run_epoch(40, &events);
        assert_eq!(report.stalled, 0);
        assert_eq!(report.outcomes, tick_outcomes);
        // Deliveries due within the epoch carry the deterministic
        // completion cycle: issue cycle + delay.
        for d in &report.delivered {
            assert!(d.completed_at < 40 + epoch_buf.delay());
        }
        let mut epoch_cells: Vec<DequeuedCell> =
            report.delivered.into_iter().map(|d| d.cell).collect();
        epoch_cells.extend(epoch_buf.drain());
        assert_eq!(epoch_cells, tick_cells);
        assert_eq!(epoch_buf.stats(), tick_buf.stats());
        assert_eq!(epoch_buf.stats().lost_reads, 0);
        assert_eq!(epoch_buf.in_flight(), 0);
        assert_eq!(epoch_buf.reconcile_lost(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn epoch_rejects_unsorted_offsets() {
        let mut buf = buffer();
        buf.run_epoch(
            8,
            &[
                (3, BufferEvent::Enqueue { queue: 0, cell: vec![1] }),
                (3, BufferEvent::Enqueue { queue: 0, cell: vec![2] }),
            ],
        );
    }

    #[test]
    fn epoch_path_drives_fabric_parallel_runner() {
        use vpnm_core::fabric::ChannelSelect;

        let config = FabricConfig {
            channels: 4,
            select: ChannelSelect::UniversalHash,
            base: VpnmConfig::test_roomy(),
            qos: None,
        };
        let mut buf = VpnmPacketBuffer::new_fabric(config, 8, 32, 5).unwrap();
        let mut events = Vec::new();
        for seq in 0..16u64 {
            events.push((seq, BufferEvent::Enqueue { queue: 5, cell: payload_bytes(5, seq, 8) }));
        }
        for seq in 0..16u64 {
            events.push((16 + seq, BufferEvent::Dequeue { queue: 5 }));
        }
        let report = buf.run_epoch(64, &events);
        assert!(report.outcomes.iter().all(Result::is_ok));
        assert_eq!(report.stalled, 0);
        let mut got: Vec<DequeuedCell> = report.delivered.into_iter().map(|d| d.cell).collect();
        got.extend(buf.drain());
        assert_eq!(got.len(), 16);
        for (seq, cell) in got.iter().enumerate() {
            assert_eq!(cell.queue, 5);
            assert_eq!(cell.data, payload_bytes(5, seq as u64, 8));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vpnm_core::VpnmConfig;
    use vpnm_workloads::packets::payload_bytes;

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Enq(u8),
        Deq(u8),
        Idle,
    }

    fn ev() -> impl Strategy<Value = Ev> {
        prop_oneof![
            3 => (0u8..4).prop_map(Ev::Enq),
            2 => (0u8..4).prop_map(Ev::Deq),
            1 => Just(Ev::Idle),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// FIFO-per-queue holds for arbitrary event interleavings: every
        /// delivered cell carries exactly the payload written at its
        /// position, and cell counts conserve.
        #[test]
        fn fifo_conservation(events in proptest::collection::vec(ev(), 1..250)) {
            let mut buf = VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 4, 16, 9).unwrap();
            let mut seqs = [0u64; 4];
            let mut expect = [0u64; 4];
            let mut accepted_deqs = 0u64;
            let mut delivered = 0u64;
            for e in &events {
                let event = match e {
                    Ev::Enq(q) => Some(BufferEvent::Enqueue {
                        queue: u32::from(*q),
                        cell: payload_bytes(u32::from(*q), seqs[*q as usize], 8),
                    }),
                    Ev::Deq(q) => Some(BufferEvent::Dequeue { queue: u32::from(*q) }),
                    Ev::Idle => None,
                };
                match buf.tick(event) {
                    Ok(cell) => {
                        match e {
                            Ev::Enq(q) => seqs[*q as usize] += 1,
                            Ev::Deq(_) => accepted_deqs += 1,
                            Ev::Idle => {}
                        }
                        if let Some(c) = cell {
                            let q = c.queue as usize;
                            prop_assert_eq!(&c.data, &payload_bytes(c.queue, expect[q], 8));
                            expect[q] += 1;
                            delivered += 1;
                        }
                    }
                    Err(BufferError::QueueEmpty | BufferError::QueueFull) => {}
                    Err(other) => prop_assert!(false, "unexpected rejection {other:?}"),
                }
            }
            for c in buf.drain() {
                let q = c.queue as usize;
                prop_assert_eq!(&c.data, &payload_bytes(c.queue, expect[q], 8));
                expect[q] += 1;
                delivered += 1;
            }
            prop_assert_eq!(delivered, accepted_deqs);
            for q in 0..4usize {
                prop_assert_eq!(buf.occupancy(q as u32), seqs[q] - expect[q]);
            }
        }

        /// The epoch-batched drive path is observationally equivalent to
        /// the per-tick path for arbitrary stall-free event interleavings:
        /// identical per-event outcomes, identical delivered-cell sequence,
        /// identical stats.
        #[test]
        fn epoch_matches_tick(events in proptest::collection::vec(ev(), 1..250)) {
            let mut tick_buf = VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 4, 16, 9).unwrap();
            let mut epoch_buf = VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 4, 16, 9).unwrap();
            let len = events.len() as u64;

            // Payloads keyed by cycle offset (not per-queue seq) so both
            // paths submit byte-identical requests regardless of
            // acceptance history.
            let mut batch = Vec::new();
            for (offset, e) in events.iter().enumerate() {
                let event = match e {
                    Ev::Enq(q) => BufferEvent::Enqueue {
                        queue: u32::from(*q),
                        cell: payload_bytes(u32::from(*q), offset as u64, 8),
                    },
                    Ev::Deq(q) => BufferEvent::Dequeue { queue: u32::from(*q) },
                    Ev::Idle => continue,
                };
                batch.push((offset as u64, event));
            }

            let mut tick_outcomes = Vec::new();
            let mut tick_cells = Vec::new();
            let mut it = batch.iter().peekable();
            for offset in 0..len {
                let ev = match it.peek() {
                    Some((o, ev)) if *o == offset => {
                        it.next();
                        Some(ev.clone())
                    }
                    _ => None,
                };
                let is_event = ev.is_some();
                match tick_buf.tick(ev) {
                    Ok(cell) => {
                        if is_event {
                            tick_outcomes.push(Ok(()));
                        }
                        tick_cells.extend(cell);
                    }
                    Err(e) => tick_outcomes.push(Err(e)),
                }
            }
            tick_cells.extend(tick_buf.drain());

            let report = epoch_buf.run_epoch(len, &batch);
            prop_assert_eq!(report.stalled, 0);
            prop_assert_eq!(&report.outcomes, &tick_outcomes);
            let mut epoch_cells: Vec<DequeuedCell> =
                report.delivered.into_iter().map(|d| d.cell).collect();
            epoch_cells.extend(epoch_buf.drain());
            prop_assert_eq!(epoch_cells, tick_cells);
            prop_assert_eq!(epoch_buf.stats(), tick_buf.stats());
        }

        /// The arena-backed epoch path is byte-identical to the owned
        /// `BufferEvent` epoch path for arbitrary interleavings: same
        /// outcomes, same delivered cells, same stats — only the payload
        /// carrier (span into shared arena vs per-event `Vec`) differs.
        #[test]
        fn arena_epoch_matches_event_epoch(events in proptest::collection::vec(ev(), 1..250)) {
            let mut ev_buf = VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 4, 16, 9).unwrap();
            let mut ar_buf = VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 4, 16, 9).unwrap();
            let len = events.len() as u64;

            let mut arena = Vec::new();
            let mut batch = Vec::new();
            let mut lane = Vec::new();
            for (offset, e) in events.iter().enumerate() {
                match e {
                    Ev::Enq(q) => {
                        let cell = payload_bytes(u32::from(*q), offset as u64, 8);
                        let start = arena.len() as u32;
                        arena.extend_from_slice(&cell);
                        batch.push((
                            offset as u64,
                            BufferEvent::Enqueue { queue: u32::from(*q), cell },
                        ));
                        lane.push((offset as u64, LaneEvent::Enqueue {
                            queue: u32::from(*q),
                            start,
                            end: arena.len() as u32,
                            tenant: 0,
                        }));
                    }
                    Ev::Deq(q) => {
                        batch.push((offset as u64, BufferEvent::Dequeue { queue: u32::from(*q) }));
                        lane.push((
                            offset as u64,
                            LaneEvent::Dequeue { queue: u32::from(*q), tenant: 0 },
                        ));
                    }
                    Ev::Idle => {}
                }
            }

            let ev_report = ev_buf.run_epoch(len, &batch);
            let ar_report = ar_buf.run_epoch_arena(len, &lane, &Bytes::from(arena));
            prop_assert_eq!(ev_report, ar_report);
            let ev_drained = ev_buf.drain();
            prop_assert_eq!(ev_drained, ar_buf.drain());
            prop_assert_eq!(ev_buf.stats(), ar_buf.stats());
        }
    }
}
