//! Non-cryptographic SplitMix64 mixing for simulator-internal use.
//!
//! This is the workspace's one canonical copy of the SplitMix64 finalizer
//! and the hasher built on it. The hot data path performs several
//! `HashMap` operations per simulated cycle (the delay-storage CAM, the
//! sparse DRAM cell store), and seed derivation plus payload keystreams
//! use the same mixer — keeping a single implementation here means the
//! batched ingest path has exactly one integer hash to optimize.
//! `vpnm-sim` re-exports everything in this module unchanged.
//!
//! Not for adversary-facing state: bank selection uses the keyed
//! universal families in this crate ([`crate::h3`] and friends), never
//! this.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
///
/// The golden-ratio increment is applied *inside*, so `splitmix64(s + i)`
/// walks the SplitMix64 stream for state `s`.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Batched [`splitmix64`]: `out[i] = splitmix64(inputs[i])`,
/// bit-identical to the scalar loop on every input.
///
/// With the `simd` feature on an AVX2 host this runs four lanes per
/// iteration (the wrapping multiplies decompose into 32×32→64 partial
/// products); otherwise it is the plain scalar loop. The serving
/// layer's `FlowTable::slots_of_batch` hashes its fingerprints here.
///
/// # Panics
///
/// Panics if `inputs` and `out` differ in length.
#[inline]
pub fn splitmix64_batch(inputs: &[u64], out: &mut [u64]) {
    assert_eq!(inputs.len(), out.len(), "batch length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::splitmix64_fold(inputs, out) {
        return;
    }
    for (o, &x) in out.iter_mut().zip(inputs) {
        *o = splitmix64(x);
    }
}

/// The bare mixing rounds of [`splitmix64`] without the golden-ratio
/// increment — the finalizer applied to already-distinct inputs.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// SplitMix64-finalizer hasher for integer keys (byte slices fold through
/// an FNV-style loop first, so non-integer keys still hash correctly).
///
/// The standard library's default SipHash is DoS-resistant but costs tens
/// of nanoseconds per probe — overkill for maps keyed by
/// simulator-internal `u64` indices that no external party controls.
/// This runs two multiplies and three xor-shifts, full avalanche, ~1 ns.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fold, then the finalizer on top.
        let mut acc = self.state ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            acc = (acc ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.state = mix64(acc);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = splitmix64(self.state.wrapping_add(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `HashMap` with [`FastHasher`] — drop-in for simulator-internal maps.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_u64_is_splitmix_stream() {
        // The hasher must walk the same stream as the standalone
        // finalizer — seed-derived RNG streams and map hashes across the
        // workspace depend on this staying bit-identical.
        for state in [0u64, 1, 42, u64::MAX / 2] {
            for i in [0u64, 1, 7, 0xDEAD_BEEF] {
                let mut h = FastHasher { state };
                h.write_u64(i);
                assert_eq!(h.finish(), splitmix64(state.wrapping_add(i)));
            }
        }
    }

    #[test]
    fn splitmix_is_increment_plus_mix() {
        for z in [0u64, 3, 999, u64::MAX] {
            assert_eq!(splitmix64(z), mix64(z.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        }
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 97, i as u32);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 97)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn avalanche_on_sequential_keys() {
        // Sequential keys must spread across the full 64-bit range —
        // identical low bits would degenerate the map to a linked list.
        let hashes: Vec<u64> = (0..64u64)
            .map(|i| {
                let mut h = FastHasher::default();
                h.write_u64(i);
                h.finish()
            })
            .collect();
        let low_bits: FastHashSet<u64> = hashes.iter().map(|h| h & 0xFFF).collect();
        assert!(low_bits.len() >= 60, "low bits collide: {}", low_bits.len());
    }

    #[test]
    fn batch_matches_scalar_including_tail() {
        // Lengths straddling the 4-lane vector width and the MIN_LANES
        // dispatch floor, so both kernel body and scalar tail are hit.
        for n in [0usize, 1, 3, 4, 7, 8, 9, 31] {
            let inputs: Vec<u64> =
                (0..n as u64).map(|i| splitmix64(i ^ 0x5EED).wrapping_mul(i | 1)).collect();
            let mut out = vec![0u64; n];
            splitmix64_batch(&inputs, &mut out);
            let scalar: Vec<u64> = inputs.iter().map(|&x| splitmix64(x)).collect();
            assert_eq!(out, scalar, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn batch_length_mismatch_rejected() {
        splitmix64_batch(&[1, 2], &mut [0]);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FastHasher::default();
        a.write(b"hello");
        let mut b = FastHasher::default();
        b.write(b"hello");
        assert_eq!(a.finish(), b.finish());
        let mut c = FastHasher::default();
        c.write(b"hellp");
        assert_ne!(a.finish(), c.finish());
    }
}
