//! The Carter–Wegman **H3** universal hash family.
//!
//! H3 is the canonical *hardware* universal hash: for an `a`-bit input and
//! `m`-bit output, the key is an `m × a` random bit matrix `M`, and
//! `h(x) = M·x` over GF(2) — i.e. each output bit is an XOR (parity) tree
//! over a keyed subset of address bits. H3 is 2-universal when the matrix
//! is uniform, and XOR trees pipeline trivially, which is why the paper's
//! `HU` block (Figure 2) can be "fully pipelined" with only a constant
//! latency added to `D`.

use crate::gf2::BitMatrix;
use crate::BankHasher;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An H3 hash from `addr_bits`-bit addresses to `out_bits`-bit bank
/// indices.
///
/// ```
/// use vpnm_hash::{BankHasher, H3Hash};
/// let h = H3Hash::from_seed(32, 5, 7);
/// assert_eq!(h.num_banks(), 32);
/// assert!(h.bank_of(12345) < 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H3Hash {
    matrix: BitMatrix,
    /// Affine constant XORed into the output, making the family *strongly*
    /// universal (pairwise independent) rather than merely universal.
    offset: u64,
    addr_bits: u32,
    out_bits: u32,
    /// Byte-folded evaluation tables: `tables[c][b] = M · (b << 8c)`.
    /// Because `M·x` is GF(2)-linear, XORing one lookup per address byte
    /// reproduces `mul_vec` exactly while replacing the per-row popcount
    /// loop with `ceil(addr_bits/8)` loads — the software analogue of the
    /// hardware XOR tree evaluating all key columns at once.
    tables: Vec<[u64; 256]>,
}

/// Byte-folded lookup tables for `matrix`, chunked little-endian.
fn fold_tables(matrix: &BitMatrix) -> Vec<[u64; 256]> {
    let chunks = matrix.num_cols().div_ceil(8);
    (0..chunks)
        .map(|c| {
            // Column vectors of this byte: col[j] = M · (1 << (8c + j)).
            let mut col = [0u64; 8];
            for (j, col_bits) in col.iter_mut().enumerate() {
                let bit = c * 8 + j as u32;
                if bit < matrix.num_cols() {
                    for r in 0..matrix.num_rows() {
                        *col_bits |= u64::from(matrix.get(r, bit)) << r;
                    }
                }
            }
            let mut t = [0u64; 256];
            for b in 1usize..256 {
                let low = b.trailing_zeros() as usize;
                t[b] = t[b & (b - 1)] ^ col[low];
            }
            t
        })
        .collect()
}

impl H3Hash {
    /// Samples a key from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `addr_bits`/`out_bits` are 0, exceed 64, or
    /// `out_bits > addr_bits` (can't produce more entropy than input), or
    /// `out_bits > 31` (bank index must fit `u32` with headroom).
    pub fn new<R: Rng + ?Sized>(addr_bits: u32, out_bits: u32, rng: &mut R) -> Self {
        assert!((1..=64).contains(&addr_bits), "addr_bits in 1..=64");
        assert!((1..=31).contains(&out_bits), "out_bits in 1..=31");
        assert!(out_bits <= addr_bits, "out_bits must not exceed addr_bits");
        let matrix = BitMatrix::random(out_bits, addr_bits, rng);
        let offset = rng.gen::<u64>() & ((1u64 << out_bits) - 1);
        Self::from_matrix(matrix, offset)
    }

    /// Samples a key deterministically from a seed.
    pub fn from_seed(addr_bits: u32, out_bits: u32, seed: u64) -> Self {
        Self::new(addr_bits, out_bits, &mut StdRng::seed_from_u64(seed))
    }

    /// Builds from an explicit key matrix and affine offset.
    ///
    /// # Panics
    ///
    /// Panics if the offset has bits beyond the matrix row count, or the
    /// matrix exceeds 31 output bits.
    pub fn from_matrix(matrix: BitMatrix, offset: u64) -> Self {
        let out_bits = matrix.num_rows();
        assert!(out_bits <= 31, "at most 31 output bits");
        assert!(offset & !((1u64 << out_bits) - 1) == 0, "offset wider than output");
        let addr_bits = matrix.num_cols();
        let tables = fold_tables(&matrix);
        H3Hash { matrix, offset, addr_bits, out_bits, tables }
    }

    /// The number of input address bits consumed.
    pub fn addr_bits(&self) -> u32 {
        self.addr_bits
    }

    /// The key matrix.
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }
}

impl BankHasher for H3Hash {
    fn num_banks(&self) -> u32 {
        1 << self.out_bits
    }

    fn bank_of(&self, addr: u64) -> u32 {
        let mut out = self.offset;
        for (c, table) in self.tables.iter().enumerate() {
            out ^= table[(addr >> (8 * c)) as u8 as usize];
        }
        out as u32
    }

    fn bank_of_batch(&self, addrs: &[u64], out: &mut [u32]) {
        assert_eq!(addrs.len(), out.len(), "batch slices must match in length");
        // Vector path: 8 addresses per iteration, one AVX2 gather per
        // byte table, truncation to 32 bits commuting with XOR — the
        // result is bit-identical to `bank_of` per element.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::simd::fold_u32(&self.tables, self.offset as u32, addrs, out) {
            return;
        }
        // Loop order swapped vs the scalar path: walk each 2 KiB byte
        // table across the whole batch while it is hot in L1, instead of
        // cycling all tables per address. XOR is commutative, so the
        // result is bit-identical to `bank_of` per element.
        out.fill(self.offset as u32);
        for (c, table) in self.tables.iter().enumerate() {
            let shift = 8 * c;
            for (o, &a) in out.iter_mut().zip(addrs) {
                *o ^= table[(a >> shift) as u8 as usize] as u32;
            }
        }
    }

    fn latency_cycles(&self) -> u64 {
        // An XOR tree over addr_bits inputs is ceil(log2(addr_bits)) 2-input
        // gate levels; pipelined at one level per cycle.
        u64::from(32 - (self.addr_bits.max(2) - 1).leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = H3Hash::from_seed(32, 5, 42);
        let b = H3Hash::from_seed(32, 5, 42);
        for x in 0..1000u64 {
            assert_eq!(a.bank_of(x), b.bank_of(x));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = H3Hash::from_seed(32, 5, 1);
        let b = H3Hash::from_seed(32, 5, 2);
        assert!((0..1000u64).any(|x| a.bank_of(x) != b.bank_of(x)));
    }

    #[test]
    fn output_in_range() {
        let h = H3Hash::from_seed(48, 6, 9);
        for x in (0..100_000u64).step_by(37) {
            assert!(h.bank_of(x) < 64);
        }
    }

    #[test]
    fn roughly_uniform_over_random_inputs() {
        let h = H3Hash::from_seed(32, 5, 123);
        let mut counts = [0u32; 32];
        let n = 32_000u64;
        for x in 0..n {
            // use well-spread inputs
            counts[h.bank_of(x.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize] += 1;
        }
        let expect = (n / 32) as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.25, "bank {b} count {c} deviates {dev:.2} from {expect}");
        }
    }

    #[test]
    fn sequential_addresses_spread_across_banks() {
        // The whole point of randomization: a stride-1 (or stride-B) stream
        // must not land in one bank.
        let h = H3Hash::from_seed(32, 5, 77);
        let mut seen = std::collections::HashSet::new();
        for x in 0..64u64 {
            seen.insert(h.bank_of(x * 32)); // stride of num_banks — kills LowBitsHash
        }
        assert!(seen.len() > 8, "stride pattern hit only {} banks", seen.len());
    }

    #[test]
    fn pairwise_collision_rate_near_universal_bound() {
        // Estimate Pr_key[h(x)=h(y)] over keys for a few fixed pairs; a
        // universal family gives 1/32 with the affine offset making it exact.
        let pairs = [(1u64, 2u64), (100, 10_000), (0xFFFF_FFFF, 1)];
        for &(x, y) in &pairs {
            let mut coll = 0u32;
            let trials = 4000u32;
            for seed in 0..trials {
                let h = H3Hash::from_seed(32, 5, u64::from(seed) + 1000);
                if h.bank_of(x) == h.bank_of(y) {
                    coll += 1;
                }
            }
            let rate = f64::from(coll) / f64::from(trials);
            assert!((rate - 1.0 / 32.0).abs() < 0.015, "pair ({x},{y}) collision rate {rate:.4}");
        }
    }

    #[test]
    fn table_fold_matches_matrix_multiply() {
        // The byte tables are derived data; the fold must agree with the
        // naive per-row parity evaluation on every input, including
        // addresses with set bits beyond addr_bits (which both ignore).
        for (addr_bits, out_bits, seed) in [(32, 5, 11u64), (20, 4, 12), (64, 6, 13), (7, 3, 14)] {
            let h = H3Hash::from_seed(addr_bits, out_bits, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            for _ in 0..2000 {
                let x: u64 = rng.gen();
                assert_eq!(
                    h.bank_of(x),
                    (h.matrix().mul_vec(x) ^ h.offset) as u32,
                    "mismatch at addr {x:#x} ({addr_bits}x{out_bits})"
                );
            }
        }
    }

    #[test]
    fn batch_matches_scalar() {
        for (addr_bits, out_bits, seed) in [(32, 5, 21u64), (64, 6, 22), (7, 3, 23)] {
            let h = H3Hash::from_seed(addr_bits, out_bits, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);
            let addrs: Vec<u64> = (0..777).map(|_| rng.gen()).collect();
            let mut out = vec![0u32; addrs.len()];
            h.bank_of_batch(&addrs, &mut out);
            for (&a, &b) in addrs.iter().zip(&out) {
                assert_eq!(b, h.bank_of(a), "addr {a:#x}");
            }
        }
    }

    #[test]
    fn latency_is_log_depth() {
        assert_eq!(H3Hash::from_seed(32, 5, 0).latency_cycles(), 5);
        assert_eq!(H3Hash::from_seed(64, 5, 0).latency_cycles(), 6);
        assert_eq!(H3Hash::from_seed(2, 1, 0).latency_cycles(), 1);
    }

    #[test]
    fn from_matrix_applies_offset() {
        let m = BitMatrix::identity(3);
        let h = H3Hash::from_matrix(m, 0b101);
        assert_eq!(h.bank_of(0b000), 0b101);
        assert_eq!(h.bank_of(0b111), 0b010);
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn from_matrix_rejects_wide_offset() {
        let _ = H3Hash::from_matrix(BitMatrix::identity(3), 0b1000);
    }

    #[test]
    #[should_panic(expected = "out_bits")]
    fn new_rejects_out_wider_than_addr() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = H3Hash::new(4, 5, &mut rng);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The batched fold (SIMD when the feature and AVX2 are on,
        /// table-major scalar otherwise) is bit-identical to the scalar
        /// `bank_of` for random keys, widths, and batch lengths spanning
        /// the 8-lane vector boundary and the scalar tail.
        #[test]
        fn batch_bit_identical_to_scalar(
            seed in any::<u64>(),
            addr_bits in 1u32..=64,
            addrs in proptest::collection::vec(any::<u64>(), 0..48),
        ) {
            let out_bits = addr_bits.min(31);
            let h = H3Hash::from_seed(addr_bits, out_bits, seed);
            let mut out = vec![0u32; addrs.len()];
            h.bank_of_batch(&addrs, &mut out);
            for (&a, &b) in addrs.iter().zip(&out) {
                prop_assert_eq!(b, h.bank_of(a), "addr {:#x}", a);
            }
        }
    }
}
