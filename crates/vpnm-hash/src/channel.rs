//! Channel-select stage for multi-channel memory fabrics.
//!
//! A fabric striping requests over `C = 2^c` independent VPNM channels
//! needs a *bijective* split of every fabric address into a `(channel,
//! local address)` pair: bijective, because each channel owns a private
//! bank/row space and every fabric line must land in exactly one physical
//! cell. [`ChannelSelector`] provides that split in three flavours:
//!
//! * [`ChannelSelect::LowBits`] — channel = low `c` address bits, local
//!   address = the remaining high bits. Interleaves consecutive lines
//!   round-robin across channels (the conventional DRAM-controller
//!   choice).
//! * [`ChannelSelect::HighBits`] — channel = high `c` bits, local = low
//!   bits. Partitions the address space into `C` contiguous regions.
//! * [`ChannelSelect::UniversalHash`] — an extra keyed stage: the fabric
//!   address is first passed through an invertible
//!   [`AffinePermutation`] over the full fabric address width, then
//!   low-bit split. Because the permutation is a bijection, so is the
//!   whole mapping — and the channel choice is unpredictable without the
//!   key, extending the paper's universal-hash argument (Section 3.2)
//!   from banks to channels.
//!
//! All three are combinational in the model: like the bank hash `HU`
//! block, a hardware realization is fully pipelined and adds a constant
//! to the normalized delay `D` but no throughput cost
//! ([`ChannelSelector::latency_cycles`]).

use crate::permute::AffinePermutation;
use std::fmt;

/// Which channel-select flavour a fabric uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelSelect {
    /// Low `c` address bits select the channel (line interleaving).
    LowBits,
    /// High `c` address bits select the channel (contiguous regions).
    HighBits,
    /// Keyed invertible affine permutation, then low-bit split.
    UniversalHash,
}

impl fmt::Display for ChannelSelect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChannelSelect::LowBits => "low-bits",
            ChannelSelect::HighBits => "high-bits",
            ChannelSelect::UniversalHash => "universal-hash",
        })
    }
}

/// A keyed, invertible `fabric address -> (channel, local address)` split.
///
/// ```
/// use vpnm_hash::{ChannelSelect, ChannelSelector};
///
/// let sel = ChannelSelector::new(ChannelSelect::UniversalHash, 16, 2, 0xFEED).unwrap();
/// let (ch, local) = sel.route(0x1234);
/// assert!(ch < 4 && local < (1 << 14));
/// assert_eq!(sel.unroute(ch, local), 0x1234);
/// ```
#[derive(Debug, Clone)]
pub struct ChannelSelector {
    kind: ChannelSelect,
    addr_bits: u32,
    channel_bits: u32,
    /// Keyed stage for [`ChannelSelect::UniversalHash`]; `None` for the
    /// plain bit selects and for the degenerate single-channel case.
    perm: Option<AffinePermutation>,
}

impl ChannelSelector {
    /// Builds a selector splitting `addr_bits`-bit fabric addresses over
    /// `2^channel_bits` channels. `seed` keys the
    /// [`ChannelSelect::UniversalHash`] stage and is ignored by the bit
    /// selects.
    ///
    /// `channel_bits == 0` (a single channel) is the identity mapping for
    /// every flavour, so a one-channel fabric routes bit-exactly like no
    /// fabric at all.
    ///
    /// # Errors
    ///
    /// Returns a message unless `channel_bits < addr_bits <= 64` and
    /// `channel_bits <= 8` (256 channels is already far beyond any line
    /// card the paper contemplates).
    pub fn new(
        kind: ChannelSelect,
        addr_bits: u32,
        channel_bits: u32,
        seed: u64,
    ) -> Result<Self, String> {
        if addr_bits == 0 || addr_bits > 64 {
            return Err(format!("addr_bits {addr_bits} must be in 1..=64"));
        }
        if channel_bits > 8 {
            return Err(format!("channel_bits {channel_bits} must be at most 8"));
        }
        if channel_bits >= addr_bits {
            return Err(format!(
                "channel_bits {channel_bits} must leave local address bits under addr_bits {addr_bits}"
            ));
        }
        let perm = (kind == ChannelSelect::UniversalHash && channel_bits > 0)
            .then(|| AffinePermutation::from_seed(addr_bits, channel_bits, seed));
        Ok(ChannelSelector { kind, addr_bits, channel_bits, perm })
    }

    /// The flavour this selector implements.
    pub fn kind(&self) -> ChannelSelect {
        self.kind
    }

    /// Fabric address width in bits.
    pub fn addr_bits(&self) -> u32 {
        self.addr_bits
    }

    /// Channel index width in bits.
    pub fn channel_bits(&self) -> u32 {
        self.channel_bits
    }

    /// Number of channels (`2^channel_bits`).
    pub fn channels(&self) -> u32 {
        1 << self.channel_bits
    }

    /// Local (per-channel) address width in bits.
    pub fn local_bits(&self) -> u32 {
        self.addr_bits - self.channel_bits
    }

    /// Splits a fabric address into `(channel, local address)`.
    ///
    /// Total over `0..2^addr_bits` and a bijection onto
    /// `(0..channels) x (0..2^local_bits)`; callers must range-check the
    /// address first (debug builds assert).
    #[inline]
    pub fn route(&self, addr: u64) -> (u32, u64) {
        debug_assert!(
            self.addr_bits == 64 || addr < (1u64 << self.addr_bits),
            "address {addr:#x} outside the {}-bit fabric space",
            self.addr_bits
        );
        if self.channel_bits == 0 {
            return (0, addr);
        }
        let cmask = (1u64 << self.channel_bits) - 1;
        match self.kind {
            ChannelSelect::LowBits => ((addr & cmask) as u32, addr >> self.channel_bits),
            ChannelSelect::HighBits => {
                let local_bits = self.local_bits();
                ((addr >> local_bits) as u32, addr & ((1u64 << local_bits) - 1))
            }
            ChannelSelect::UniversalHash => {
                let p = self.perm.as_ref().expect("keyed stage present").apply(addr);
                ((p & cmask) as u32, p >> self.channel_bits)
            }
        }
    }

    /// Batched [`ChannelSelector::route`]: `(channels[i], locals[i]) =
    /// route(addrs[i])`, bit-identical to the scalar path. The
    /// [`ChannelSelect::UniversalHash`] flavour evaluates its affine
    /// stage through [`AffinePermutation::apply_batch`], so the fabric's
    /// route pass rides the same SIMD fold as the bank hash.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length.
    pub fn route_batch(&self, addrs: &[u64], channels: &mut [u32], locals: &mut [u64]) {
        assert_eq!(addrs.len(), channels.len(), "batch slices must match in length");
        assert_eq!(addrs.len(), locals.len(), "batch slices must match in length");
        if self.channel_bits == 0 {
            channels.fill(0);
            locals.copy_from_slice(addrs);
            return;
        }
        let cmask = (1u64 << self.channel_bits) - 1;
        match self.kind {
            ChannelSelect::LowBits => {
                for ((&a, ch), local) in addrs.iter().zip(channels).zip(locals) {
                    *ch = (a & cmask) as u32;
                    *local = a >> self.channel_bits;
                }
            }
            ChannelSelect::HighBits => {
                let local_bits = self.local_bits();
                let lmask = (1u64 << local_bits) - 1;
                for ((&a, ch), local) in addrs.iter().zip(channels).zip(locals) {
                    *ch = (a >> local_bits) as u32;
                    *local = a & lmask;
                }
            }
            ChannelSelect::UniversalHash => {
                let perm = self.perm.as_ref().expect("keyed stage present");
                perm.apply_batch(addrs, locals);
                for (ch, local) in channels.iter_mut().zip(locals) {
                    *ch = (*local & cmask) as u32;
                    *local >>= self.channel_bits;
                }
            }
        }
    }

    /// Inverse of [`ChannelSelector::route`]: the fabric address served by
    /// `channel` at `local`.
    #[inline]
    pub fn unroute(&self, channel: u32, local: u64) -> u64 {
        debug_assert!(channel < self.channels(), "channel {channel} out of range");
        if self.channel_bits == 0 {
            return local;
        }
        match self.kind {
            ChannelSelect::LowBits => (local << self.channel_bits) | u64::from(channel),
            ChannelSelect::HighBits => (u64::from(channel) << self.local_bits()) | local,
            ChannelSelect::UniversalHash => {
                let p = (local << self.channel_bits) | u64::from(channel);
                self.perm.as_ref().expect("keyed stage present").invert(p)
            }
        }
    }

    /// Pipeline latency of a hardware realization, in interface cycles:
    /// zero for the wire-only bit selects, the XOR-tree depth of the
    /// affine stage for [`ChannelSelect::UniversalHash`].
    pub fn latency_cycles(&self) -> u64 {
        match &self.perm {
            Some(_) => u64::from(32 - (self.addr_bits.max(2) - 1).leading_zeros()),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const KINDS: [ChannelSelect; 3] =
        [ChannelSelect::LowBits, ChannelSelect::HighBits, ChannelSelect::UniversalHash];

    #[test]
    fn route_unroute_is_a_bijection_on_small_space() {
        for kind in KINDS {
            let sel = ChannelSelector::new(kind, 12, 2, 7).unwrap();
            let mut seen = HashSet::new();
            for addr in 0..(1u64 << 12) {
                let (ch, local) = sel.route(addr);
                assert!(ch < 4, "{kind}");
                assert!(local < (1 << 10), "{kind}");
                assert!(seen.insert((ch, local)), "{kind}: duplicate ({ch}, {local})");
                assert_eq!(sel.unroute(ch, local), addr, "{kind}");
            }
            assert_eq!(seen.len(), 1 << 12);
        }
    }

    #[test]
    fn single_channel_is_identity_for_every_kind() {
        for kind in KINDS {
            let sel = ChannelSelector::new(kind, 16, 0, 99).unwrap();
            for addr in (0..(1u64 << 16)).step_by(97) {
                assert_eq!(sel.route(addr), (0, addr), "{kind}");
                assert_eq!(sel.unroute(0, addr), addr, "{kind}");
            }
            assert_eq!(sel.channels(), 1);
            assert_eq!(sel.latency_cycles(), 0, "{kind}: no keyed stage when c = 0");
        }
    }

    #[test]
    fn bit_selects_pick_documented_bits() {
        let low = ChannelSelector::new(ChannelSelect::LowBits, 8, 2, 0).unwrap();
        assert_eq!(low.route(0b1011_0110), (0b10, 0b10_1101));
        let high = ChannelSelector::new(ChannelSelect::HighBits, 8, 2, 0).unwrap();
        assert_eq!(high.route(0b1011_0110), (0b10, 0b11_0110));
    }

    #[test]
    fn universal_hash_is_keyed() {
        let a = ChannelSelector::new(ChannelSelect::UniversalHash, 20, 2, 1).unwrap();
        let b = ChannelSelector::new(ChannelSelect::UniversalHash, 20, 2, 2).unwrap();
        let same = ChannelSelector::new(ChannelSelect::UniversalHash, 20, 2, 1).unwrap();
        let diffs =
            (0..(1u64 << 20)).step_by(101).filter(|&addr| a.route(addr) != b.route(addr)).count();
        assert!(diffs > 0, "two keys must disagree somewhere");
        for addr in (0..(1u64 << 20)).step_by(101) {
            assert_eq!(a.route(addr), same.route(addr), "same key, same routing");
        }
    }

    #[test]
    fn universal_hash_spreads_a_channel_aligned_stride() {
        // A stride of C defeats the low-bits select (every address lands
        // on one channel) but not the keyed stage.
        let low = ChannelSelector::new(ChannelSelect::LowBits, 24, 2, 3).unwrap();
        let hash = ChannelSelector::new(ChannelSelect::UniversalHash, 24, 2, 3).unwrap();
        let low_channels: HashSet<u32> = (0..256u64).map(|i| low.route(i * 4).0).collect();
        let hash_channels: HashSet<u32> = (0..256u64).map(|i| hash.route(i * 4).0).collect();
        assert_eq!(low_channels.len(), 1);
        assert_eq!(hash_channels.len(), 4);
    }

    #[test]
    fn dimension_errors() {
        assert!(ChannelSelector::new(ChannelSelect::LowBits, 0, 0, 0).is_err());
        assert!(ChannelSelector::new(ChannelSelect::LowBits, 65, 0, 0).is_err());
        assert!(ChannelSelector::new(ChannelSelect::LowBits, 8, 8, 0).is_err());
        assert!(ChannelSelector::new(ChannelSelect::LowBits, 16, 9, 0).is_err());
        assert!(ChannelSelector::new(ChannelSelect::UniversalHash, 16, 4, 0).is_ok());
    }

    #[test]
    fn display_names() {
        assert_eq!(ChannelSelect::LowBits.to_string(), "low-bits");
        assert_eq!(ChannelSelect::HighBits.to_string(), "high-bits");
        assert_eq!(ChannelSelect::UniversalHash.to_string(), "universal-hash");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn kind() -> impl Strategy<Value = ChannelSelect> {
        prop_oneof![
            Just(ChannelSelect::LowBits),
            Just(ChannelSelect::HighBits),
            Just(ChannelSelect::UniversalHash),
        ]
    }

    proptest! {
        /// The batched route (riding the SIMD affine fold for the keyed
        /// flavour) is bit-identical to the scalar `route` for every
        /// flavour, key, geometry, and batch length spanning the vector
        /// boundary and the scalar tail.
        #[test]
        fn route_batch_bit_identical_to_scalar(
            kind in kind(),
            seed in any::<u64>(),
            addr_bits in 9u32..=64,
            channel_bits in 0u32..=8,
            raw in proptest::collection::vec(any::<u64>(), 0..48),
        ) {
            let sel = ChannelSelector::new(kind, addr_bits, channel_bits, seed).unwrap();
            let mask = if addr_bits == 64 { u64::MAX } else { (1u64 << addr_bits) - 1 };
            let addrs: Vec<u64> = raw.iter().map(|&a| a & mask).collect();
            let mut channels = vec![0u32; addrs.len()];
            let mut locals = vec![0u64; addrs.len()];
            sel.route_batch(&addrs, &mut channels, &mut locals);
            for (i, &a) in addrs.iter().enumerate() {
                prop_assert_eq!((channels[i], locals[i]), sel.route(a), "addr {:#x}", a);
            }
        }
    }
}
