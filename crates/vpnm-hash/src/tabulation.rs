//! Simple tabulation hashing.
//!
//! The address is split into 8-bit characters; each character indexes a
//! per-position table of random words which are XORed together. Simple
//! tabulation is 3-independent and, despite its simplicity, behaves like a
//! much higher-independence family in balls-into-bins settings — making it a
//! good third family for the statistical comparisons in the experiments.

use crate::BankHasher;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tabulation hash from 64-bit addresses to `out_bits`-bit bank indices.
///
/// The hardware realization is 8 parallel 256-entry SRAM lookups plus an
/// XOR tree — fully pipelined in ~2 cycles.
///
/// ```
/// use vpnm_hash::{BankHasher, TabulationHash};
/// let h = TabulationHash::from_seed(5, 21);
/// assert!(h.bank_of(0xABCD_EF01) < 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabulationHash {
    tables: Box<[[u32; 256]; 8]>,
    out_bits: u32,
}

impl TabulationHash {
    /// Samples tables from `rng`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= out_bits <= 31`.
    pub fn new<R: Rng + ?Sized>(out_bits: u32, rng: &mut R) -> Self {
        assert!((1..=31).contains(&out_bits), "out_bits in 1..=31");
        let mask = (1u32 << out_bits) - 1;
        let mut tables = Box::new([[0u32; 256]; 8]);
        for t in tables.iter_mut() {
            for e in t.iter_mut() {
                *e = rng.gen::<u32>() & mask;
            }
        }
        TabulationHash { tables, out_bits }
    }

    /// Samples tables deterministically from a seed.
    pub fn from_seed(out_bits: u32, seed: u64) -> Self {
        Self::new(out_bits, &mut StdRng::seed_from_u64(seed))
    }
}

impl BankHasher for TabulationHash {
    fn num_banks(&self) -> u32 {
        1 << self.out_bits
    }

    fn bank_of(&self, addr: u64) -> u32 {
        let mut h = 0u32;
        for (i, t) in self.tables.iter().enumerate() {
            h ^= t[((addr >> (8 * i)) & 0xFF) as usize];
        }
        h
    }

    fn bank_of_batch(&self, addrs: &[u64], out: &mut [u32]) {
        assert_eq!(addrs.len(), out.len(), "batch slices must match in length");
        // Vector path: 8 addresses per iteration, one AVX2 gather per
        // character table; bit-identical to `bank_of` per element.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::simd::fold_tab_u32(&self.tables, addrs, out) {
            return;
        }
        // Table-major scalar fold: each 1 KiB character table stays hot
        // in L1 across the whole batch. XOR commutes, so the result is
        // bit-identical to `bank_of` per element.
        out.fill(0);
        for (i, t) in self.tables.iter().enumerate() {
            let shift = 8 * i;
            for (o, &a) in out.iter_mut().zip(addrs) {
                *o ^= t[((a >> shift) & 0xFF) as usize];
            }
        }
    }

    fn latency_cycles(&self) -> u64 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = TabulationHash::from_seed(5, 4);
        let b = TabulationHash::from_seed(5, 4);
        for x in (0..10_000u64).step_by(7) {
            let v = a.bank_of(x);
            assert!(v < 32);
            assert_eq!(v, b.bank_of(x));
        }
    }

    #[test]
    fn single_byte_change_changes_hash_distribution() {
        let h = TabulationHash::from_seed(8, 5);
        // flipping one input byte re-randomizes the output completely
        let mut diffs = 0;
        for x in 0..1000u64 {
            if h.bank_of(x) != h.bank_of(x | 0x0100_0000) {
                diffs += 1;
            }
        }
        assert!(diffs > 900);
    }

    #[test]
    fn uniform_over_sequential_inputs() {
        // tabulation handles even sequential inputs well
        let h = TabulationHash::from_seed(5, 6);
        let mut counts = [0u32; 32];
        for x in 0..32_000u64 {
            counts[h.bank_of(x) as usize] += 1;
        }
        for &c in &counts {
            let dev = (f64::from(c) - 1000.0).abs() / 1000.0;
            assert!(dev < 0.25);
        }
    }

    #[test]
    fn pairwise_collision_rate_bounded() {
        let (x, y) = (7u64, 123_456u64);
        let trials = 4000u32;
        let mut coll = 0u32;
        for seed in 0..trials {
            let h = TabulationHash::from_seed(5, u64::from(seed));
            if h.bank_of(x) == h.bank_of(y) {
                coll += 1;
            }
        }
        let rate = f64::from(coll) / f64::from(trials);
        assert!((rate - 1.0 / 32.0).abs() < 0.015, "rate {rate:.4}");
    }

    #[test]
    fn batch_matches_scalar() {
        let h = TabulationHash::from_seed(6, 31);
        let addrs: Vec<u64> =
            (0..333).map(|i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let mut out = vec![0u32; addrs.len()];
        h.bank_of_batch(&addrs, &mut out);
        for (&a, &b) in addrs.iter().zip(&out) {
            assert_eq!(b, h.bank_of(a), "addr {a:#x}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The batched fold (SIMD when the feature and AVX2 are on,
        /// table-major scalar otherwise) is bit-identical to the scalar
        /// `bank_of` for random keys and batch lengths spanning the
        /// 8-lane vector boundary and the scalar tail.
        #[test]
        fn batch_bit_identical_to_scalar(
            seed in any::<u64>(),
            out_bits in 1u32..=31,
            addrs in proptest::collection::vec(any::<u64>(), 0..48),
        ) {
            let h = TabulationHash::from_seed(out_bits, seed);
            let mut out = vec![0u32; addrs.len()];
            h.bank_of_batch(&addrs, &mut out);
            for (&a, &b) in addrs.iter().zip(&out) {
                prop_assert_eq!(b, h.bank_of(a), "addr {:#x}", a);
            }
        }
    }
}
