//! Dietzfelbinger multiply–shift universal hashing.
//!
//! `h(x) = ((a·x + b) mod 2^w) >> (w − m)` with odd `a` is universal for
//! `m`-bit outputs and costs one multiply — a convenient software
//! cross-check for the H3 family and the default hash in the workload
//! generators' internal sampling.

use crate::BankHasher;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A multiply–shift hash from 64-bit addresses to `out_bits`-bit bank
/// indices.
///
/// ```
/// use vpnm_hash::{BankHasher, MultiplyShiftHash};
/// let h = MultiplyShiftHash::from_seed(5, 3);
/// assert_eq!(h.num_banks(), 32);
/// assert!(h.bank_of(99) < 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplyShiftHash {
    a: u64,
    b: u64,
    out_bits: u32,
}

impl MultiplyShiftHash {
    /// Samples a key from `rng`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= out_bits <= 31`.
    pub fn new<R: Rng + ?Sized>(out_bits: u32, rng: &mut R) -> Self {
        assert!((1..=31).contains(&out_bits), "out_bits in 1..=31");
        MultiplyShiftHash { a: rng.gen::<u64>() | 1, b: rng.gen::<u64>(), out_bits }
    }

    /// Samples a key deterministically from a seed.
    pub fn from_seed(out_bits: u32, seed: u64) -> Self {
        Self::new(out_bits, &mut StdRng::seed_from_u64(seed))
    }

    /// The odd multiplier of the key.
    pub fn multiplier(&self) -> u64 {
        self.a
    }
}

impl BankHasher for MultiplyShiftHash {
    fn num_banks(&self) -> u32 {
        1 << self.out_bits
    }

    fn bank_of(&self, addr: u64) -> u32 {
        (self.a.wrapping_mul(addr).wrapping_add(self.b) >> (64 - self.out_bits)) as u32
    }

    fn latency_cycles(&self) -> u64 {
        // A pipelined 64-bit multiplier is typically 3 stages.
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_is_odd() {
        for seed in 0..50 {
            assert_eq!(MultiplyShiftHash::from_seed(4, seed).multiplier() & 1, 1);
        }
    }

    #[test]
    fn deterministic_and_in_range() {
        let h = MultiplyShiftHash::from_seed(6, 11);
        let h2 = MultiplyShiftHash::from_seed(6, 11);
        for x in 0..500u64 {
            let b = h.bank_of(x);
            assert!(b < 64);
            assert_eq!(b, h2.bank_of(x));
        }
    }

    #[test]
    fn sequential_inputs_spread() {
        let h = MultiplyShiftHash::from_seed(5, 3);
        let mut seen = std::collections::HashSet::new();
        for x in 0..64u64 {
            seen.insert(h.bank_of(x * 32));
        }
        assert!(seen.len() > 8);
    }

    #[test]
    fn pairwise_collision_rate_bounded() {
        let (x, y) = (12u64, 99_991u64);
        let trials = 4000u32;
        let mut coll = 0u32;
        for seed in 0..trials {
            let h = MultiplyShiftHash::from_seed(5, u64::from(seed));
            if h.bank_of(x) == h.bank_of(y) {
                coll += 1;
            }
        }
        let rate = f64::from(coll) / f64::from(trials);
        // multiply-shift guarantees <= 2/m; typically near 1/m
        assert!(rate < 2.5 / 32.0, "collision rate {rate:.4}");
    }

    #[test]
    fn uniform_over_random_inputs() {
        let h = MultiplyShiftHash::from_seed(5, 8);
        let mut counts = [0u32; 32];
        for x in 0..32_000u64 {
            counts[h.bank_of(x.wrapping_mul(0x2545_F491_4F6C_DD1D)) as usize] += 1;
        }
        for &c in &counts {
            let dev = (f64::from(c) - 1000.0).abs() / 1000.0;
            assert!(dev < 0.25);
        }
    }
}
