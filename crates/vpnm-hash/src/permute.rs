//! Invertible affine address randomizers.
//!
//! A bank *hash* tells you which bank an address maps to, but a memory
//! controller also has to *place* every line somewhere: the full mapping
//! from line address to (bank, row-within-bank) must be a bijection, or two
//! lines would collide in the same physical cell. [`AffinePermutation`]
//! provides that bijection: `p(x) = M·x ⊕ c` with `M` a random invertible
//! GF(2) matrix. The low `bank_bits` of `p(x)` select the bank, the
//! remaining bits the in-bank location — both uniformly randomized.
//!
//! This also supports the paper's re-keying escape hatch (Section 4): "a
//! further option is to change the universal mapping function and reorder
//! the data on the occurrence of multiple stalls". [`AffinePermutation::
//! relocation`] computes, for each line, where it moves under a new key.

use crate::gf2::BitMatrix;
use crate::BankHasher;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An invertible affine transform `p(x) = M·x ⊕ c` over `addr_bits`-bit
/// addresses, used as a bijective bank/row placement function.
///
/// ```
/// use vpnm_hash::{AffinePermutation, BankHasher};
/// let p = AffinePermutation::from_seed(16, 4, 99);
/// // A permutation: 2^16 inputs map to 2^16 distinct outputs.
/// let x = 0x1234u64;
/// let y = p.apply(x);
/// assert_eq!(p.invert(y), x);
/// assert_eq!(p.bank_of(x), (y & 0xF) as u32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffinePermutation {
    forward: BitMatrix,
    inverse: BitMatrix,
    /// Byte-tabulated `forward`/`inverse` (the H3 trick): linearity makes
    /// `M·x` the XOR of one table entry per input byte, so the hot
    /// `apply`/`invert` paths cost a few L1 loads instead of one popcount
    /// per output bit. Derived from the matrices at construction — never
    /// serialized, always in agreement.
    fwd_tab: ByteTables,
    inv_tab: ByteTables,
    offset: u64,
    addr_bits: u32,
    bank_bits: u32,
}

/// Per-byte XOR tables for a GF(2) linear map: `tabs[c][b] = M·(b « 8c)`,
/// so `M·x = ⊕_c tabs[c][byte_c(x)]`. Bit-identical to
/// [`BitMatrix::mul_vec`] for every input, including the masking of bits
/// beyond the matrix's column count (those bits were masked when the
/// entries were built).
#[derive(Clone, PartialEq, Eq)]
struct ByteTables {
    tabs: Vec<[u64; 256]>,
}

impl ByteTables {
    fn new(m: &BitMatrix) -> Self {
        let mut tabs = vec![[0u64; 256]; m.num_cols().div_ceil(8) as usize];
        for (c, tab) in tabs.iter_mut().enumerate() {
            for (b, slot) in tab.iter_mut().enumerate() {
                *slot = m.mul_vec((b as u64) << (8 * c));
            }
        }
        ByteTables { tabs }
    }

    #[inline]
    fn apply(&self, x: u64) -> u64 {
        let mut out = 0;
        for (c, tab) in self.tabs.iter().enumerate() {
            out ^= tab[(x >> (8 * c)) as u8 as usize];
        }
        out
    }

    /// Batched fold with the final XOR constant: `out[i] = init ⊕
    /// M·xs[i]`. AVX2-gathered 4 lanes at a time when available,
    /// table-major scalar otherwise; bit-identical to `apply` either way.
    fn apply_batch(&self, init: u64, xs: &[u64], out: &mut [u64]) {
        debug_assert_eq!(xs.len(), out.len());
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::simd::fold_u64(&self.tabs, init, xs, out) {
            return;
        }
        out.fill(init);
        for (c, tab) in self.tabs.iter().enumerate() {
            let shift = 8 * c;
            for (o, &x) in out.iter_mut().zip(xs) {
                *o ^= tab[(x >> shift) as u8 as usize];
            }
        }
    }
}

impl std::fmt::Debug for ByteTables {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteTables({} tables)", self.tabs.len())
    }
}

impl AffinePermutation {
    /// Samples a random invertible transform.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bank_bits < addr_bits <= 64` and
    /// `bank_bits <= 31`.
    pub fn new<R: Rng + ?Sized>(addr_bits: u32, bank_bits: u32, rng: &mut R) -> Self {
        assert!((2..=64).contains(&addr_bits), "addr_bits in 2..=64");
        assert!(bank_bits >= 1 && bank_bits < addr_bits && bank_bits <= 31);
        let forward = BitMatrix::random_invertible(addr_bits, rng);
        let inverse = forward.inverse().expect("sampled invertible");
        let offset =
            rng.gen::<u64>() & if addr_bits == 64 { u64::MAX } else { (1u64 << addr_bits) - 1 };
        let fwd_tab = ByteTables::new(&forward);
        let inv_tab = ByteTables::new(&inverse);
        AffinePermutation { forward, inverse, fwd_tab, inv_tab, offset, addr_bits, bank_bits }
    }

    /// Samples deterministically from a seed.
    pub fn from_seed(addr_bits: u32, bank_bits: u32, seed: u64) -> Self {
        Self::new(addr_bits, bank_bits, &mut StdRng::seed_from_u64(seed))
    }

    /// The randomized physical location of line `x`.
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        self.fwd_tab.apply(x) ^ self.offset
    }

    /// Inverse mapping: which line lives at physical location `y`.
    #[inline]
    pub fn invert(&self, y: u64) -> u64 {
        self.inv_tab.apply(y ^ self.offset)
    }

    /// Batched [`AffinePermutation::apply`]: `out[i] = apply(xs[i])`,
    /// bit-identical to the scalar path, vectorized when the `simd`
    /// feature and AVX2 are available.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `out` differ in length.
    pub fn apply_batch(&self, xs: &[u64], out: &mut [u64]) {
        assert_eq!(xs.len(), out.len(), "batch slices must match in length");
        self.fwd_tab.apply_batch(self.offset, xs, out);
    }

    /// Number of address bits in the permuted space.
    pub fn addr_bits(&self) -> u32 {
        self.addr_bits
    }

    /// Row-within-bank part of the placement (the bits above the bank
    /// index).
    #[inline]
    pub fn row_of(&self, x: u64) -> u64 {
        self.apply(x) >> self.bank_bits
    }

    /// For re-keying: where does the line currently at physical location
    /// `y` (under `self`) live under `new`? Data migration walks physical
    /// locations, so this is `new.apply(self.invert(y))`.
    pub fn relocation(&self, new: &AffinePermutation, y: u64) -> u64 {
        new.apply(self.invert(y))
    }
}

impl BankHasher for AffinePermutation {
    fn num_banks(&self) -> u32 {
        1 << self.bank_bits
    }

    fn bank_of(&self, addr: u64) -> u32 {
        (self.apply(addr) & ((1u64 << self.bank_bits) - 1)) as u32
    }

    fn bank_of_batch(&self, addrs: &[u64], out: &mut [u32]) {
        assert_eq!(addrs.len(), out.len(), "batch slices must match in length");
        let mask = (1u64 << self.bank_bits) - 1;
        let mut locs = [0u64; 64];
        for (addrs, out) in addrs.chunks(64).zip(out.chunks_mut(64)) {
            let locs = &mut locs[..addrs.len()];
            self.fwd_tab.apply_batch(self.offset, addrs, locs);
            for (o, &loc) in out.iter_mut().zip(locs.iter()) {
                *o = (loc & mask) as u32;
            }
        }
    }

    fn latency_cycles(&self) -> u64 {
        // same XOR-tree depth as H3 over addr_bits inputs
        u64::from(32 - (self.addr_bits.max(2) - 1).leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn is_a_bijection_on_small_space() {
        let p = AffinePermutation::from_seed(12, 3, 1);
        let mut seen = HashSet::new();
        for x in 0..(1u64 << 12) {
            let y = p.apply(x);
            assert!(y < (1 << 12));
            assert!(seen.insert(y), "duplicate output {y}");
            assert_eq!(p.invert(y), x);
        }
        assert_eq!(seen.len(), 1 << 12);
    }

    #[test]
    fn banks_perfectly_balanced() {
        // A bijection sends exactly 2^(addr-bank) lines to each bank.
        let p = AffinePermutation::from_seed(10, 4, 2);
        let mut counts = [0u32; 16];
        for x in 0..(1u64 << 10) {
            counts[p.bank_of(x) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 64));
    }

    #[test]
    fn row_and_bank_reassemble_location() {
        let p = AffinePermutation::from_seed(20, 5, 3);
        for x in (0..(1u64 << 20)).step_by(4097) {
            let loc = p.apply(x);
            assert_eq!((p.row_of(x) << 5) | u64::from(p.bank_of(x)), loc);
        }
    }

    #[test]
    fn relocation_consistent_with_rekey() {
        let old = AffinePermutation::from_seed(12, 3, 10);
        let new = AffinePermutation::from_seed(12, 3, 11);
        for y in (0..(1u64 << 12)).step_by(13) {
            let line = old.invert(y);
            assert_eq!(old.relocation(&new, y), new.apply(line));
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = AffinePermutation::from_seed(16, 4, 5);
        let b = AffinePermutation::from_seed(16, 4, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn stride_pattern_spreads() {
        let p = AffinePermutation::from_seed(32, 5, 6);
        let mut seen = HashSet::new();
        for i in 0..64u64 {
            seen.insert(p.bank_of(i * 32));
        }
        assert!(seen.len() > 8);
    }

    #[test]
    #[should_panic(expected = "bank_bits")]
    fn rejects_bank_bits_ge_addr_bits() {
        let _ = AffinePermutation::from_seed(8, 8, 0);
    }

    #[test]
    fn byte_tables_match_the_matrices_bit_for_bit() {
        // The tabulated hot path must agree with the defining mat-vec on
        // every width, including non-byte-aligned ones and stray high
        // bits beyond addr_bits (both mask identically).
        for (addr_bits, seed) in [(2u32, 1u64), (13, 2), (32, 3), (57, 4), (64, 5)] {
            let p = AffinePermutation::from_seed(addr_bits, 1, seed);
            let mut x = seed | 1;
            for _ in 0..500 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                assert_eq!(p.apply(x), p.forward.mul_vec(x) ^ p.offset, "{addr_bits} bits");
                assert_eq!(p.invert(x), p.inverse.mul_vec(x ^ p.offset), "{addr_bits} bits");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// apply/invert round-trip for arbitrary dimensions and inputs.
        #[test]
        fn roundtrip(seed in any::<u64>(), addr_bits in 2u32..32, v in any::<u64>()) {
            let bank_bits = 1u32.max(addr_bits / 4).min(addr_bits - 1);
            let p = AffinePermutation::from_seed(addr_bits, bank_bits, seed);
            let mask = (1u64 << addr_bits) - 1;
            let x = v & mask;
            prop_assert_eq!(p.invert(p.apply(x)), x);
            prop_assert!(p.apply(x) <= mask);
        }

        /// bank_of is consistent with apply's low bits.
        #[test]
        fn bank_consistent(seed in any::<u64>(), v in any::<u64>()) {
            let p = AffinePermutation::from_seed(24, 4, seed);
            let x = v & 0xFF_FFFF;
            prop_assert_eq!(u64::from(p.bank_of(x)), p.apply(x) & 0xF);
            prop_assert_eq!(p.row_of(x), p.apply(x) >> 4);
        }

        /// The batched apply (SIMD when the feature and AVX2 are on,
        /// table-major scalar otherwise) is bit-identical to the scalar
        /// `apply`/`bank_of` for random keys, widths, and batch lengths
        /// spanning the 4-lane vector boundary and the scalar tail.
        #[test]
        fn batch_bit_identical_to_scalar(
            seed in any::<u64>(),
            addr_bits in 2u32..=64,
            xs in proptest::collection::vec(any::<u64>(), 0..48),
        ) {
            let bank_bits = 1u32.max(addr_bits / 4).min(addr_bits - 1).min(31);
            let p = AffinePermutation::from_seed(addr_bits, bank_bits, seed);
            let mut out = vec![0u64; xs.len()];
            p.apply_batch(&xs, &mut out);
            let mut banks = vec![0u32; xs.len()];
            p.bank_of_batch(&xs, &mut banks);
            for (i, &x) in xs.iter().enumerate() {
                prop_assert_eq!(out[i], p.apply(x), "apply({:#x})", x);
                prop_assert_eq!(banks[i], p.bank_of(x), "bank_of({:#x})", x);
            }
        }
    }
}
