//! Universal hashing substrate for Virtually Pipelined Network Memory.
//!
//! The VPNM controller (paper Section 3.2) maps memory lines to banks with a
//! *universal hash* so that no adversary can construct bank conflicts with
//! better-than-random probability without directly observing conflicts —
//! and latency normalization ensures conflicts are never observable. This
//! crate provides the hash machinery:
//!
//! * [`gf2`] — dense bit-matrix linear algebra over GF(2): rank, inversion,
//!   random invertible matrices. This is the foundation for hardware-style
//!   XOR-network hashes.
//! * [`h3`] — the classic Carter–Wegman **H3** family (each output bit is a
//!   parity over a keyed subset of input bits), the standard hardware
//!   universal hash; what the paper's `HU` block would synthesize to.
//! * [`multiply_shift`] — Dietzfelbinger's multiply–shift family, a cheaper
//!   software-friendly 2-universal alternative used for cross-checking.
//! * [`tabulation`] — simple tabulation hashing (3-independent), a third
//!   family for statistical comparison.
//! * [`permute`] — *invertible* affine GF(2) address randomizers. Unlike a
//!   bare bank hash, an invertible transform defines a bijective placement
//!   of memory lines onto (bank, row) pairs, so every physical line is used
//!   exactly once — this is how an actual controller must randomize
//!   placement.
//! * [`channel`] — the fabric-level *channel-select* stage: bijective
//!   `address -> (channel, local address)` splits (low bits, high bits,
//!   or a keyed invertible permutation) used by `vpnm-core`'s
//!   multi-channel `VpnmFabric` to stripe requests over independent
//!   controllers.
//! * [`fast`] — the workspace's canonical *non-adversarial* SplitMix64
//!   mixer and hasher for simulator-internal maps and keystreams;
//!   never used for bank selection.
//!
//! All hashers implement [`BankHasher`], the interface consumed by
//! `vpnm-core`.
//!
//! # Example
//!
//! ```
//! use vpnm_hash::{BankHasher, H3Hash};
//!
//! // 32-bit addresses hashed onto 32 banks (5 bank bits).
//! let h = H3Hash::from_seed(32, 5, 0xDEAD_BEEF);
//! let b = h.bank_of(0x1234_5678);
//! assert!(b < 32);
//! // Deterministic for a fixed key:
//! assert_eq!(b, H3Hash::from_seed(32, 5, 0xDEAD_BEEF).bank_of(0x1234_5678));
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod fast;
pub mod gf2;
pub mod h3;
pub mod multiply_shift;
pub mod permute;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd;
pub mod tabulation;

pub use channel::{ChannelSelect, ChannelSelector};
pub use fast::{splitmix64, FastHashMap, FastHashSet, FastHasher};
pub use gf2::BitMatrix;
pub use h3::H3Hash;
pub use multiply_shift::MultiplyShiftHash;
pub use permute::AffinePermutation;
pub use tabulation::TabulationHash;

/// A keyed function from memory-line addresses to bank indices.
///
/// Implementations must be *universal* (collision probability of any fixed
/// address pair over the key choice is at most `1/num_banks`) for the VPNM
/// worst-case analysis (paper Sections 3.2 and 5) to hold.
pub trait BankHasher {
    /// Number of banks the hash maps onto (a power of two).
    fn num_banks(&self) -> u32;

    /// Maps `addr` to a bank index in `0..num_banks()`.
    fn bank_of(&self, addr: u64) -> u32;

    /// Maps a batch of addresses at once: `out[i] = bank_of(addrs[i])`.
    ///
    /// Semantically identical to the scalar loop; implementations may
    /// override it to amortize per-call overhead (e.g. [`H3Hash`] hoists
    /// its byte-fold table walk outside the address loop). Mirrors the
    /// pipelined hardware `HU` block, which hashes one address per cycle
    /// back-to-back.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` and `out` differ in length.
    fn bank_of_batch(&self, addrs: &[u64], out: &mut [u32]) {
        assert_eq!(addrs.len(), out.len(), "batch slices must match in length");
        for (o, &a) in out.iter_mut().zip(addrs) {
            *o = self.bank_of(a);
        }
    }

    /// The pipeline latency of a hardware realization of this hash, in
    /// interface cycles. The paper notes the universal hash "can be fully
    /// pipelined" (Section 3.4): it adds a constant to the normalized delay
    /// `D` but no throughput cost.
    fn latency_cycles(&self) -> u64 {
        1
    }
}

/// Blanket impl so trait objects and references can be passed where a
/// generic `BankHasher` is expected.
impl<T: BankHasher + ?Sized> BankHasher for &T {
    fn num_banks(&self) -> u32 {
        (**self).num_banks()
    }
    fn bank_of(&self, addr: u64) -> u32 {
        (**self).bank_of(addr)
    }
    fn bank_of_batch(&self, addrs: &[u64], out: &mut [u32]) {
        (**self).bank_of_batch(addrs, out)
    }
    fn latency_cycles(&self) -> u64 {
        (**self).latency_cycles()
    }
}

/// A trivial non-randomized "hash" that selects the low address bits as the
/// bank index — what a conventional controller does, and the baseline the
/// paper's randomization is compared against (an adversary defeats this
/// with a simple stride of `num_banks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowBitsHash {
    bank_bits: u32,
}

impl LowBitsHash {
    /// Creates a selector of the low `bank_bits` address bits.
    ///
    /// # Panics
    ///
    /// Panics if `bank_bits` is 0 or greater than 32.
    pub fn new(bank_bits: u32) -> Self {
        assert!((1..=32).contains(&bank_bits), "bank_bits must be in 1..=32");
        LowBitsHash { bank_bits }
    }
}

impl BankHasher for LowBitsHash {
    fn num_banks(&self) -> u32 {
        1 << self.bank_bits
    }

    fn bank_of(&self, addr: u64) -> u32 {
        (addr & ((1 << self.bank_bits) - 1)) as u32
    }

    fn latency_cycles(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bits_hash_is_modulo() {
        let h = LowBitsHash::new(3);
        assert_eq!(h.num_banks(), 8);
        for a in 0..64u64 {
            assert_eq!(h.bank_of(a), (a % 8) as u32);
        }
        assert_eq!(h.latency_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "bank_bits")]
    fn low_bits_rejects_zero() {
        let _ = LowBitsHash::new(0);
    }

    #[test]
    fn trait_object_usable() {
        let h = LowBitsHash::new(2);
        let dynref: &dyn BankHasher = &h;
        assert_eq!(dynref.bank_of(5), 1);
        assert_eq!(dynref.num_banks(), 4);
        fn takes_generic<H: BankHasher>(h: H) -> u32 {
            h.bank_of(6)
        }
        assert_eq!(takes_generic(h), 2);
    }
}
