//! AVX2 batched byte-table folds for the hashing hot paths.
//!
//! Every hash family in this crate evaluates as a XOR-fold of per-byte
//! lookup tables (`out = init ⊕ ⊕_c table_c[byte_c(x)]` — the H3 trick),
//! which vectorizes as one gather per table per lane group. The kernels
//! here process 8 addresses per iteration for the 32-bit folds (H3 bank
//! hashing, tabulation) and 4 per iteration for the full-width 64-bit
//! fold (the affine channel-select/placement stage), with scalar tails.
//!
//! Bit-identity with the scalar paths is a hard contract: XOR is
//! commutative and the gathers read exactly the same table entries the
//! scalar loops do, so results match bit for bit on every input — the
//! `simd_matches_scalar` proptests in each family pin this.
//!
//! Entry points return `false` when AVX2 is unavailable at runtime (or
//! the batch is too small to be worth dispatching); callers then fall
//! through to their scalar loops. The whole module is compiled out
//! unless the `simd` feature is on and the target is x86_64.

use std::arch::x86_64::{
    __m128i, __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_blend_epi32,
    _mm256_castsi256_si128, _mm256_i32gather_epi32, _mm256_i32gather_epi64, _mm256_loadu_si256,
    _mm256_mul_epu32, _mm256_permutevar8x32_epi32, _mm256_set1_epi32, _mm256_set1_epi64x,
    _mm256_setr_epi32, _mm256_slli_epi64, _mm256_srl_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
    _mm256_xor_si256, _mm_cvtsi32_si128,
};

/// Below this batch length the dispatch overhead beats the vector win.
const MIN_LANES: usize = 8;

/// Cached result of the AVX2 runtime probe.
#[inline]
fn avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Low-32-bit XOR-fold over `u64`-entry byte tables:
/// `out[i] = init ⊕ ⊕_c (tables[c][byte_c(addrs[i])] as u32)`.
///
/// Identical to the H3 scalar fold because truncation to 32 bits
/// commutes with XOR. Returns `false` (leaving `out` untouched) when the
/// AVX2 path is unavailable.
#[inline]
pub(crate) fn fold_u32(tables: &[[u64; 256]], init: u32, addrs: &[u64], out: &mut [u32]) -> bool {
    debug_assert_eq!(addrs.len(), out.len());
    if addrs.len() < MIN_LANES || !avx2() {
        return false;
    }
    // SAFETY: AVX2 presence verified by the runtime probe above.
    unsafe { fold_u32_avx2(tables, init, addrs, out) };
    true
}

/// 32-bit XOR-fold over the 8 `u32`-entry tables of simple tabulation:
/// `out[i] = ⊕_c tables[c][byte_c(addrs[i])]`.
#[inline]
pub(crate) fn fold_tab_u32(tables: &[[u32; 256]; 8], addrs: &[u64], out: &mut [u32]) -> bool {
    debug_assert_eq!(addrs.len(), out.len());
    if addrs.len() < MIN_LANES || !avx2() {
        return false;
    }
    // SAFETY: AVX2 presence verified by the runtime probe above.
    unsafe { fold_tab_u32_avx2(tables, addrs, out) };
    true
}

/// Full-width XOR-fold over `u64`-entry byte tables:
/// `out[i] = init ⊕ ⊕_c tables[c][byte_c(addrs[i])]` — the affine
/// permutation's `apply` over a batch.
#[inline]
pub(crate) fn fold_u64(tables: &[[u64; 256]], init: u64, addrs: &[u64], out: &mut [u64]) -> bool {
    debug_assert_eq!(addrs.len(), out.len());
    if addrs.len() < MIN_LANES || !avx2() {
        return false;
    }
    // SAFETY: AVX2 presence verified by the runtime probe above.
    unsafe { fold_u64_avx2(tables, init, addrs, out) };
    true
}

/// Packs the low dwords of two 4×u64 byte vectors into one 8×u32 index
/// vector (lanes 0..3 from `lo`, 4..7 from `hi`). Each u64 lane holds a
/// value in `0..=255`, so its payload sits entirely in its even dword.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn pack_indices(lo: __m256i, hi: __m256i, pat: __m256i) -> __m256i {
    let l = _mm256_permutevar8x32_epi32(lo, pat);
    let h = _mm256_permutevar8x32_epi32(hi, pat);
    _mm256_blend_epi32::<0xF0>(l, h)
}

#[target_feature(enable = "avx2")]
unsafe fn fold_u32_avx2(tables: &[[u64; 256]], init: u32, addrs: &[u64], out: &mut [u32]) {
    let n = addrs.len();
    // Even dwords of a 4×u64 vector, duplicated so one blend assembles
    // the 8-lane index vector.
    let pat = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    let byte_mask = _mm256_set1_epi64x(0xFF);
    let mut i = 0;
    while i + 8 <= n {
        let a_lo = _mm256_loadu_si256(addrs.as_ptr().add(i).cast());
        let a_hi = _mm256_loadu_si256(addrs.as_ptr().add(i + 4).cast());
        let mut acc = _mm256_set1_epi32(init as i32);
        for (c, table) in tables.iter().enumerate() {
            let shift = _mm_cvtsi32_si128(8 * c as i32);
            let lo_b = _mm256_and_si256(_mm256_srl_epi64(a_lo, shift), byte_mask);
            let hi_b = _mm256_and_si256(_mm256_srl_epi64(a_hi, shift), byte_mask);
            let idx = pack_indices(lo_b, hi_b, pat);
            // Scale 8 strides over the u64 entries; the gathered dword is
            // the entry's low half (little-endian), which is all the
            // 32-bit fold keeps.
            let ent = _mm256_i32gather_epi32::<8>(table.as_ptr().cast(), idx);
            acc = _mm256_xor_si256(acc, ent);
        }
        _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), acc);
        i += 8;
    }
    for (o, &a) in out[i..].iter_mut().zip(&addrs[i..]) {
        let mut v = init;
        for (c, table) in tables.iter().enumerate() {
            v ^= table[(a >> (8 * c)) as u8 as usize] as u32;
        }
        *o = v;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn fold_tab_u32_avx2(tables: &[[u32; 256]; 8], addrs: &[u64], out: &mut [u32]) {
    let n = addrs.len();
    let pat = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    let byte_mask = _mm256_set1_epi64x(0xFF);
    let mut i = 0;
    while i + 8 <= n {
        let a_lo = _mm256_loadu_si256(addrs.as_ptr().add(i).cast());
        let a_hi = _mm256_loadu_si256(addrs.as_ptr().add(i + 4).cast());
        let mut acc = _mm256_set1_epi32(0);
        for (c, table) in tables.iter().enumerate() {
            let shift = _mm_cvtsi32_si128(8 * c as i32);
            let lo_b = _mm256_and_si256(_mm256_srl_epi64(a_lo, shift), byte_mask);
            let hi_b = _mm256_and_si256(_mm256_srl_epi64(a_hi, shift), byte_mask);
            let idx = pack_indices(lo_b, hi_b, pat);
            let ent = _mm256_i32gather_epi32::<4>(table.as_ptr().cast(), idx);
            acc = _mm256_xor_si256(acc, ent);
        }
        _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), acc);
        i += 8;
    }
    for (o, &a) in out[i..].iter_mut().zip(&addrs[i..]) {
        let mut v = 0u32;
        for (c, table) in tables.iter().enumerate() {
            v ^= table[((a >> (8 * c)) & 0xFF) as usize];
        }
        *o = v;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn fold_u64_avx2(tables: &[[u64; 256]], init: u64, addrs: &[u64], out: &mut [u64]) {
    let n = addrs.len();
    let pat = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    let byte_mask = _mm256_set1_epi64x(0xFF);
    let mut i = 0;
    while i + 4 <= n {
        let a = _mm256_loadu_si256(addrs.as_ptr().add(i).cast());
        let mut acc = _mm256_set1_epi64x(init as i64);
        for (c, table) in tables.iter().enumerate() {
            let shift = _mm_cvtsi32_si128(8 * c as i32);
            let bytes = _mm256_and_si256(_mm256_srl_epi64(a, shift), byte_mask);
            // 4 dword indices in the low 128 bits, gathering full u64
            // entries at stride 8.
            let idx: __m128i = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(bytes, pat));
            let ent = _mm256_i32gather_epi64::<8>(table.as_ptr().cast(), idx);
            acc = _mm256_xor_si256(acc, ent);
        }
        _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), acc);
        i += 4;
    }
    for (o, &a) in out[i..].iter_mut().zip(&addrs[i..]) {
        let mut v = init;
        for (c, table) in tables.iter().enumerate() {
            v ^= table[(a >> (8 * c)) as u8 as usize];
        }
        *o = v;
    }
}

/// Lane-wise 64-bit modular multiply by a constant — AVX2 has no
/// `epi64` multiply, so compose it from three 32×32→64 partial
/// products: `lo·lo + ((lo·hi + hi·lo) << 32)`, which is exactly the
/// low 64 bits of the full product (the scalar `wrapping_mul`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mul_epu64(a: __m256i, b: __m256i) -> __m256i {
    let lo = _mm256_mul_epu32(a, b);
    let cross1 = _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), b);
    let cross2 = _mm256_mul_epu32(a, _mm256_srli_epi64::<32>(b));
    let cross = _mm256_add_epi64(cross1, cross2);
    _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
}

/// Batched SplitMix64 finalizer: `out[i] = splitmix64(inputs[i])`,
/// bit-identical to `fast::splitmix64` (wrapping adds/multiplies map
/// one-to-one onto the modular vector ops). Returns `false` when the
/// AVX2 path is unavailable or the batch is too small.
#[inline]
pub(crate) fn splitmix64_fold(inputs: &[u64], out: &mut [u64]) -> bool {
    debug_assert_eq!(inputs.len(), out.len());
    if inputs.len() < MIN_LANES || !avx2() {
        return false;
    }
    // SAFETY: AVX2 presence verified by the runtime probe above.
    unsafe { splitmix64_avx2(inputs, out) };
    true
}

#[target_feature(enable = "avx2")]
unsafe fn splitmix64_avx2(inputs: &[u64], out: &mut [u64]) {
    let n = inputs.len();
    let gold = _mm256_set1_epi64x(0x9E37_79B9_7F4A_7C15u64 as i64);
    let c1 = _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9u64 as i64);
    let c2 = _mm256_set1_epi64x(0x94D0_49BB_1331_11EBu64 as i64);
    let mut i = 0;
    while i + 4 <= n {
        let mut z = _mm256_loadu_si256(inputs.as_ptr().add(i).cast());
        z = _mm256_add_epi64(z, gold);
        z = _mm256_xor_si256(z, _mm256_srli_epi64::<30>(z));
        z = mul_epu64(z, c1);
        z = _mm256_xor_si256(z, _mm256_srli_epi64::<27>(z));
        z = mul_epu64(z, c2);
        z = _mm256_xor_si256(z, _mm256_srli_epi64::<31>(z));
        _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), z);
        i += 4;
    }
    for (o, &x) in out[i..].iter_mut().zip(&inputs[i..]) {
        *o = crate::fast::splitmix64(x);
    }
}
