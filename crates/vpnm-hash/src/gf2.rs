//! Dense linear algebra over GF(2) on up-to-64-bit vectors.
//!
//! A hardware address randomizer is an XOR network: each output bit is the
//! parity of a subset of input bits, i.e. multiplication of the address
//! vector by a boolean matrix. [`BitMatrix`] provides exactly that, plus
//! rank/inversion so we can construct *invertible* (bijective) randomizers
//! for memory placement.

use rand::Rng;

/// A dense `rows × cols` matrix over GF(2), `rows, cols ≤ 64`.
///
/// Each row is stored as a `u64` bit mask; column `j` of row `i` is bit `j`
/// of `rows[i]`. Matrix–vector multiplication maps a `cols`-bit input to a
/// `rows`-bit output.
///
/// ```
/// use vpnm_hash::BitMatrix;
/// let id = BitMatrix::identity(8);
/// assert_eq!(id.mul_vec(0b1011_0001), 0b1011_0001);
/// assert_eq!(id.rank(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<u64>,
    cols: u32,
}

impl BitMatrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is 0 or exceeds 64.
    pub fn zero(rows: u32, cols: u32) -> Self {
        assert!((1..=64).contains(&rows), "rows must be in 1..=64");
        assert!((1..=64).contains(&cols), "cols must be in 1..=64");
        BitMatrix { rows: vec![0; rows as usize], cols }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: u32) -> Self {
        let mut m = BitMatrix::zero(n, n);
        for i in 0..n {
            m.rows[i as usize] = 1u64 << i;
        }
        m
    }

    /// Builds a matrix from row masks.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty/too long or any mask uses bits ≥ `cols`.
    pub fn from_rows(rows: Vec<u64>, cols: u32) -> Self {
        assert!(!rows.is_empty() && rows.len() <= 64, "1..=64 rows required");
        assert!((1..=64).contains(&cols));
        let mask = mask_of(cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r & !mask == 0, "row {i} uses bits beyond {cols} columns");
        }
        BitMatrix { rows, cols }
    }

    /// Samples a uniformly random matrix.
    pub fn random<R: Rng + ?Sized>(rows: u32, cols: u32, rng: &mut R) -> Self {
        let mut m = BitMatrix::zero(rows, cols);
        let mask = mask_of(cols);
        for r in &mut m.rows {
            *r = rng.gen::<u64>() & mask;
        }
        m
    }

    /// Samples a uniformly random **invertible** `n × n` matrix by
    /// rejection (the fraction of invertible matrices over GF(2) is
    /// ~28.9%, so this terminates quickly).
    pub fn random_invertible<R: Rng + ?Sized>(n: u32, rng: &mut R) -> Self {
        loop {
            let m = BitMatrix::random(n, n, rng);
            if m.rank() == n {
                return m;
            }
        }
    }

    /// Number of rows (output bits).
    pub fn num_rows(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Number of columns (input bits).
    pub fn num_cols(&self) -> u32 {
        self.cols
    }

    /// Returns row `i` as a bit mask.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: u32) -> u64 {
        self.rows[i as usize]
    }

    /// Gets entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, i: u32, j: u32) -> bool {
        assert!(j < self.cols);
        (self.rows[i as usize] >> j) & 1 == 1
    }

    /// Sets entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, i: u32, j: u32, v: bool) {
        assert!(j < self.cols);
        if v {
            self.rows[i as usize] |= 1u64 << j;
        } else {
            self.rows[i as usize] &= !(1u64 << j);
        }
    }

    /// Matrix–vector product over GF(2): output bit `i` is the parity of
    /// `rows[i] & v`.
    ///
    /// Input bits beyond `cols` are ignored.
    #[inline]
    pub fn mul_vec(&self, v: u64) -> u64 {
        let v = v & mask_of(self.cols);
        let mut out = 0u64;
        for (i, &r) in self.rows.iter().enumerate() {
            out |= (((r & v).count_ones() & 1) as u64) << i;
        }
        out
    }

    /// Matrix–matrix product `self * other` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `self.num_cols() != other.num_rows()`.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.num_rows(), "dimension mismatch");
        // (A·B) row i = XOR of B-rows selected by bits of A-row i.
        let mut out = BitMatrix::zero(self.num_rows(), other.num_cols());
        for (i, &arow) in self.rows.iter().enumerate() {
            let mut acc = 0u64;
            let mut bits = arow;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                acc ^= other.rows[j];
                bits &= bits - 1;
            }
            out.rows[i] = acc;
        }
        out
    }

    /// Rank via Gaussian elimination.
    pub fn rank(&self) -> u32 {
        let mut rows = self.rows.clone();
        let mut rank = 0u32;
        for col in 0..self.cols {
            let bit = 1u64 << col;
            // find a pivot row at or below `rank`
            if let Some(p) = (rank as usize..rows.len()).find(|&i| rows[i] & bit != 0) {
                rows.swap(rank as usize, p);
                let pivot = rows[rank as usize];
                for (i, r) in rows.iter_mut().enumerate() {
                    if i != rank as usize && *r & bit != 0 {
                        *r ^= pivot;
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// Inverse of a square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<BitMatrix> {
        let n = self.num_rows();
        if n != self.cols {
            return None;
        }
        let mut a = self.rows.clone();
        let mut inv = BitMatrix::identity(n).rows;
        for col in 0..n {
            let bit = 1u64 << col;
            let p = (col as usize..a.len()).find(|&i| a[i] & bit != 0)?;
            a.swap(col as usize, p);
            inv.swap(col as usize, p);
            let (pa, pi) = (a[col as usize], inv[col as usize]);
            for i in 0..a.len() {
                if i != col as usize && a[i] & bit != 0 {
                    a[i] ^= pa;
                    inv[i] ^= pi;
                }
            }
        }
        Some(BitMatrix { rows: inv, cols: n })
    }

    /// Transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zero(self.cols, self.num_rows());
        for i in 0..self.num_rows() {
            for j in 0..self.cols {
                if self.get(i, j) {
                    t.set(j, i, true);
                }
            }
        }
        t
    }
}

#[inline]
fn mask_of(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_identity() {
        for n in [1u32, 5, 64] {
            let id = BitMatrix::identity(n);
            assert_eq!(id.rank(), n);
            let v = 0xDEAD_BEEF_CAFE_F00Du64 & if n == 64 { u64::MAX } else { (1 << n) - 1 };
            assert_eq!(id.mul_vec(v), v);
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        // rows: out0 = in0 ^ in2, out1 = in1
        let m = BitMatrix::from_rows(vec![0b101, 0b010], 3);
        assert_eq!(m.mul_vec(0b100), 0b01);
        assert_eq!(m.mul_vec(0b101), 0b00);
        assert_eq!(m.mul_vec(0b111), 0b10);
    }

    #[test]
    fn mul_vec_is_linear() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = BitMatrix::random(16, 32, &mut rng);
        for _ in 0..100 {
            let a: u64 = rng.gen::<u64>() & 0xFFFF_FFFF;
            let b: u64 = rng.gen::<u64>() & 0xFFFF_FFFF;
            assert_eq!(m.mul_vec(a ^ b), m.mul_vec(a) ^ m.mul_vec(b));
        }
    }

    #[test]
    fn matrix_product_agrees_with_composition() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BitMatrix::random(8, 16, &mut rng);
        let b = BitMatrix::random(16, 24, &mut rng);
        let ab = a.mul(&b);
        for _ in 0..50 {
            let v: u64 = rng.gen::<u64>() & 0xFF_FFFF;
            assert_eq!(ab.mul_vec(v), a.mul_vec(b.mul_vec(v)));
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1u32, 2, 8, 32, 64] {
            let m = BitMatrix::random_invertible(n, &mut rng);
            let inv = m.inverse().expect("invertible");
            let prod = m.mul(&inv);
            assert_eq!(prod, BitMatrix::identity(n), "n={n}");
            // and vector roundtrip
            for _ in 0..20 {
                let v = rng.gen::<u64>() & if n == 64 { u64::MAX } else { (1 << n) - 1 };
                assert_eq!(inv.mul_vec(m.mul_vec(v)), v);
            }
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        // two equal rows
        let m = BitMatrix::from_rows(vec![0b11, 0b11], 2);
        assert_eq!(m.rank(), 1);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn non_square_has_no_inverse() {
        let m = BitMatrix::zero(2, 3);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn rank_of_zero_matrix() {
        assert_eq!(BitMatrix::zero(8, 8).rank(), 0);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = BitMatrix::random(7, 13, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().num_rows(), 13);
        assert_eq!(m.transpose().num_cols(), 7);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = BitMatrix::zero(4, 4);
        m.set(2, 3, true);
        assert!(m.get(2, 3));
        m.set(2, 3, false);
        assert!(!m.get(2, 3));
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn from_rows_rejects_wide_masks() {
        let _ = BitMatrix::from_rows(vec![0b1000], 3);
    }

    #[test]
    fn random_invertible_is_full_rank() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let m = BitMatrix::random_invertible(20, &mut rng);
            assert_eq!(m.rank(), 20);
        }
    }

    #[test]
    fn mul_vec_ignores_high_input_bits() {
        let m = BitMatrix::from_rows(vec![0b1], 1);
        assert_eq!(m.mul_vec(u64::MAX), m.mul_vec(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Linearity over arbitrary matrices and vectors.
        #[test]
        fn mul_vec_linear(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>(), rows in 1u32..64, cols in 1u32..64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = BitMatrix::random(rows, cols, &mut rng);
            prop_assert_eq!(m.mul_vec(a ^ b), m.mul_vec(a) ^ m.mul_vec(b));
        }

        /// Inverse round-trips on random invertible matrices of any size.
        #[test]
        fn inverse_roundtrip_random(seed in any::<u64>(), n in 1u32..32, v in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = BitMatrix::random_invertible(n, &mut rng);
            let inv = m.inverse().expect("invertible by construction");
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            let x = v & mask;
            prop_assert_eq!(inv.mul_vec(m.mul_vec(x)), x);
            prop_assert_eq!(m.mul_vec(inv.mul_vec(x)), x);
        }

        /// rank(A·B) <= min(rank A, rank B).
        #[test]
        fn rank_submultiplicative(seed in any::<u64>(), n in 2u32..24) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = BitMatrix::random(n, n, &mut rng);
            let b = BitMatrix::random(n, n, &mut rng);
            let ab = a.mul(&b);
            prop_assert!(ab.rank() <= a.rank().min(b.rank()));
        }

        /// Transpose preserves rank.
        #[test]
        fn transpose_preserves_rank(seed in any::<u64>(), rows in 1u32..32, cols in 1u32..32) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = BitMatrix::random(rows, cols, &mut rng);
            prop_assert_eq!(m.rank(), m.transpose().rank());
        }
    }
}
