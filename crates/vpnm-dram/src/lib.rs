//! Banked DRAM device simulator — the memory substrate underneath the VPNM
//! controller.
//!
//! Modern DRAM exposes internal banks so accesses can be interleaved (paper
//! Section 3.1); a *bank conflict* occurs when an access needs a bank that
//! is still busy with a previous access, delaying it by `L` cycles (the
//! ratio of bank access time to data transfer time; the paper uses `L = 20`
//! for RDRAM-class parts). This crate models:
//!
//! * [`DramConfig`] — geometry (banks, rows, row width, cell size) and
//!   timing; presets for the parts the paper references (RDRAM with many
//!   banks, SDRAM with few).
//! * [`timing`] — the paper's simple `L`-cycle bank model plus a more
//!   detailed row-buffer (open-page) model with `tRCD/tCAS/tRP` components.
//! * [`Bank`] — per-bank busy/row-buffer state machine.
//! * [`DramDevice`] — banks + shared data bus + backing cell storage with
//!   full stats (conflicts, row hits, bus utilization).
//!
//! The device is *passive*: callers (the VPNM bank controllers, or the
//! baseline packet buffers) present a cycle number with each command, and
//! the device reports when data will be ready or why the command cannot be
//! accepted. This keeps clocking policy in the controller where it belongs.
//!
//! # Example
//!
//! ```
//! use vpnm_dram::{DramConfig, DramDevice, DramError};
//! use vpnm_sim::Cycle;
//!
//! let mut dram = DramDevice::new(DramConfig::paper_rdram());
//! // Write a cell in bank 3, then read it back.
//! let done = dram.issue_write(3, 40, b"hello".to_vec(), Cycle::new(0)).unwrap();
//! let grant = dram.issue_read(3, 40, done).unwrap();
//! assert_eq!(&grant.data[..5], b"hello");
//! // The bank is busy until the read completes: a second access conflicts.
//! assert!(matches!(
//!     dram.issue_read(3, 41, done + 1),
//!     Err(DramError::BankBusy { .. })
//! ));
//! ```

#![warn(missing_docs)]

pub mod bank;
pub mod config;
pub mod device;
pub mod stats;
pub mod storage;
pub mod timing;

pub use bank::{AccessKind, Bank};
pub use config::DramConfig;
pub use device::{DramDevice, DramError, ReadGrant};
pub use stats::DramStats;
pub use storage::SparseStorage;
pub use timing::{SimpleTiming, TimingModel, TimingPolicy};
