//! Per-bank busy/row-buffer state machine.

use crate::timing::TimingPolicy;
use vpnm_sim::Cycle;

/// Read or write — banks treat both as an `L`-cycle occupation in the
/// paper's model, but stats distinguish them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// The state of one DRAM bank.
///
/// A bank is *busy* from the cycle an access is issued until
/// `busy_until`; issuing during that window is a bank conflict and is
/// rejected (the caller must retry later — the VPNM bank access queue
/// exists precisely to absorb this).
///
/// ```
/// use vpnm_dram::{Bank, AccessKind};
/// use vpnm_dram::timing::SimpleTiming;
/// use vpnm_sim::Cycle;
///
/// let mut bank = Bank::new();
/// let t = SimpleTiming::new(10);
/// let done = bank.start_access(&t, AccessKind::Read, 5, Cycle::new(0)).unwrap();
/// assert_eq!(done, Cycle::new(10));
/// assert!(bank.is_busy(Cycle::new(9)));
/// assert!(!bank.is_busy(Cycle::new(10)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bank {
    busy_until: Option<Cycle>,
    open_row: Option<u64>,
    accesses: u64,
    row_hits: u64,
}

impl Bank {
    /// A fresh, idle, precharged bank.
    pub fn new() -> Self {
        Bank::default()
    }

    /// True if the bank cannot accept an access at `now`.
    pub fn is_busy(&self, now: Cycle) -> bool {
        self.busy_until.is_some_and(|t| now < t)
    }

    /// The cycle at which the bank becomes free, if it is busy.
    pub fn busy_until(&self) -> Option<Cycle> {
        self.busy_until
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Starts an access to `row` at `now`, returning the completion cycle.
    ///
    /// # Errors
    ///
    /// Returns the cycle the bank frees up if it is still busy (a bank
    /// conflict).
    pub fn start_access<T: TimingPolicy>(
        &mut self,
        timing: &T,
        _kind: AccessKind,
        row: u64,
        now: Cycle,
    ) -> Result<Cycle, Cycle> {
        if let Some(t) = self.busy_until {
            if now < t {
                return Err(t);
            }
        }
        let (cycles, hit) = timing.access_cycles(self.open_row, row);
        let done = now + cycles;
        self.busy_until = Some(done);
        self.open_row = Some(row);
        self.accesses += 1;
        if hit {
            self.row_hits += 1;
        }
        Ok(done)
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Row-buffer hits among the serviced accesses.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{OpenPageTiming, SimpleTiming};

    #[test]
    fn access_occupies_bank_for_l_cycles() {
        let mut b = Bank::new();
        let t = SimpleTiming::new(4);
        let done = b.start_access(&t, AccessKind::Read, 0, Cycle::new(10)).unwrap();
        assert_eq!(done, Cycle::new(14));
        for c in 10..14 {
            assert!(b.is_busy(Cycle::new(c)));
        }
        assert!(!b.is_busy(Cycle::new(14)));
    }

    #[test]
    fn conflict_reports_free_time() {
        let mut b = Bank::new();
        let t = SimpleTiming::new(5);
        b.start_access(&t, AccessKind::Write, 1, Cycle::new(0)).unwrap();
        let err = b.start_access(&t, AccessKind::Read, 2, Cycle::new(3)).unwrap_err();
        assert_eq!(err, Cycle::new(5));
        // after it frees, access succeeds
        assert!(b.start_access(&t, AccessKind::Read, 2, Cycle::new(5)).is_ok());
        assert_eq!(b.accesses(), 2);
    }

    #[test]
    fn open_page_row_hits_tracked() {
        let mut b = Bank::new();
        let t = OpenPageTiming::sdram_pc133();
        let d1 = b.start_access(&t, AccessKind::Read, 7, Cycle::new(0)).unwrap();
        let d2 = b.start_access(&t, AccessKind::Read, 7, d1).unwrap();
        assert_eq!(d2 - d1, 3); // CAS-only
        assert_eq!(b.row_hits(), 1);
        let d3 = b.start_access(&t, AccessKind::Read, 9, d2).unwrap();
        assert_eq!(d3 - d2, 9); // precharge + activate + cas
        assert_eq!(b.row_hits(), 1);
        assert_eq!(b.open_row(), Some(9));
    }

    #[test]
    fn fresh_bank_is_idle() {
        let b = Bank::new();
        assert!(!b.is_busy(Cycle::ZERO));
        assert_eq!(b.busy_until(), None);
        assert_eq!(b.open_row(), None);
    }
}
