//! DRAM geometry and timing configuration.

use crate::timing::{OpenPageTiming, TimingModel};

/// Configuration of a simulated DRAM subsystem.
///
/// Geometry follows the paper's terminology: `num_banks` independent banks
/// (`B`), each holding `rows_per_bank` rows of `cells_per_row` cells of
/// `cell_bytes` bytes (the paper's data granularity is 64-byte cells, after
/// Garcia et al. \[12\]).
///
/// ```
/// use vpnm_dram::DramConfig;
/// use vpnm_dram::timing::TimingPolicy;
/// let cfg = DramConfig::paper_rdram();
/// assert_eq!(cfg.num_banks, 32);
/// assert_eq!(cfg.timing.l_ratio(), 20);
/// assert!(cfg.capacity_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent banks (`B`).
    pub num_banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Cells per row.
    pub cells_per_row: u64,
    /// Bytes per cell (data word `W`; the paper uses 64-byte cells).
    pub cell_bytes: usize,
    /// Bank/bus timing.
    pub timing: TimingModel,
}

impl DramConfig {
    /// The configuration the paper's analysis assumes: 32 logical banks
    /// (RDRAM modules expose up to 512 physical banks; the paper's optimal
    /// design groups them into `B = 32`), `L = 20`, 64-byte cells.
    pub fn paper_rdram() -> Self {
        DramConfig {
            num_banks: 32,
            rows_per_bank: 1 << 16,
            cells_per_row: 32,
            cell_bytes: 64,
            timing: TimingModel::simple(20),
        }
    }

    /// An SDRAM-class part with few banks — the paper argues such parts
    /// cannot reach a useful MTS (Section 5.2: "an SDRAM with its small
    /// number of banks cannot achieve a reasonable MTS").
    pub fn sdram_4bank() -> Self {
        DramConfig {
            num_banks: 4,
            rows_per_bank: 1 << 14,
            cells_per_row: 64,
            cell_bytes: 64,
            timing: TimingModel::OpenPage(OpenPageTiming::sdram_pc133()),
        }
    }

    /// A tiny configuration for fast unit tests.
    pub fn tiny_test() -> Self {
        DramConfig {
            num_banks: 4,
            rows_per_bank: 16,
            cells_per_row: 4,
            cell_bytes: 8,
            timing: TimingModel::simple(3),
        }
    }

    /// Builder-style override of the bank count.
    pub fn with_banks(mut self, num_banks: u32) -> Self {
        self.num_banks = num_banks;
        self
    }

    /// Builder-style override of the timing model.
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Cells per bank.
    pub fn cells_per_bank(&self) -> u64 {
        self.rows_per_bank * self.cells_per_row
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u128 {
        u128::from(self.num_banks) * u128::from(self.cells_per_bank()) * self.cell_bytes as u128
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_banks == 0 {
            return Err("num_banks must be positive".into());
        }
        if !self.num_banks.is_power_of_two() {
            return Err(format!("num_banks must be a power of two, got {}", self.num_banks));
        }
        if self.rows_per_bank == 0 || self.cells_per_row == 0 {
            return Err("geometry dimensions must be positive".into());
        }
        if self.cell_bytes == 0 {
            return Err("cell_bytes must be positive".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::paper_rdram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingPolicy;

    #[test]
    fn presets_validate() {
        DramConfig::paper_rdram().validate().unwrap();
        DramConfig::sdram_4bank().validate().unwrap();
        DramConfig::tiny_test().validate().unwrap();
    }

    #[test]
    fn paper_rdram_parameters() {
        let c = DramConfig::paper_rdram();
        assert_eq!(c.num_banks, 32);
        assert_eq!(c.cell_bytes, 64);
        assert_eq!(c.timing.l_ratio(), 20);
    }

    #[test]
    fn capacity_math() {
        let c = DramConfig::tiny_test();
        assert_eq!(c.cells_per_bank(), 64);
        assert_eq!(c.capacity_bytes(), 4 * 64 * 8);
    }

    #[test]
    fn builder_overrides() {
        let c = DramConfig::paper_rdram().with_banks(64).with_timing(TimingModel::simple(10));
        assert_eq!(c.num_banks, 64);
        assert_eq!(c.timing.l_ratio(), 10);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(DramConfig::paper_rdram().with_banks(0).validate().is_err());
        assert!(DramConfig::paper_rdram().with_banks(12).validate().is_err());
        let mut c = DramConfig::tiny_test();
        c.cell_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = DramConfig::tiny_test();
        c.rows_per_bank = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_paper_config() {
        assert_eq!(DramConfig::default(), DramConfig::paper_rdram());
    }
}
