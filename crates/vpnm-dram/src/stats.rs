//! Device-level statistics: conflicts, row hits, bus occupancy.

use vpnm_sim::Cycle;

/// Aggregated statistics of a [`crate::DramDevice`].
///
/// The paper motivates VPNM with measured DRAM efficiencies — "PC133 SDRAM
/// works at 60% efficiency and DDR266 SDRAM works at 37% efficiency, where
/// 80 to 85% of the lost efficiency is due to the bank conflicts" (Section
/// 3.1). [`DramStats::bus_efficiency`] reproduces that metric for our
/// simulated devices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Reads accepted.
    pub reads: u64,
    /// Writes accepted.
    pub writes: u64,
    /// Accesses rejected because the target bank was busy.
    pub bank_conflicts: u64,
    /// Row-buffer hits (always 0 under the simple timing model).
    pub row_hits: u64,
    /// Total cycles the data bus was occupied by transfers.
    pub bus_busy_cycles: u64,
    /// Last cycle at which any command was issued.
    pub last_activity: Option<Cycle>,
}

impl DramStats {
    /// Total accepted accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of elapsed cycles (up to `now`) during which the data bus
    /// was transferring — the efficiency metric of paper Section 3.1.
    ///
    /// Returns 0.0 before any cycles have elapsed.
    pub fn bus_efficiency(&self, now: Cycle) -> f64 {
        let elapsed = now.as_u64();
        if elapsed == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / elapsed as f64
        }
    }

    /// Folds another device's statistics into this one — used by the
    /// multi-channel fabric to report aggregate device behavior across
    /// per-channel DRAM instances. Counters add; `last_activity` keeps
    /// the latest cycle.
    pub fn merge_from(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bank_conflicts += other.bank_conflicts;
        self.row_hits += other.row_hits;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.last_activity = match (self.last_activity, other.last_activity) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Fraction of issue attempts that hit a busy bank.
    pub fn conflict_rate(&self) -> f64 {
        let attempts = self.accesses() + self.bank_conflicts;
        if attempts == 0 {
            0.0
        } else {
            self.bank_conflicts as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_and_conflict_rate() {
        let s = DramStats {
            reads: 6,
            writes: 2,
            bank_conflicts: 2,
            row_hits: 0,
            bus_busy_cycles: 8,
            last_activity: Some(Cycle::new(16)),
        };
        assert_eq!(s.accesses(), 8);
        assert!((s.bus_efficiency(Cycle::new(16)) - 0.5).abs() < 1e-12);
        assert!((s.conflict_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters_and_keeps_latest_activity() {
        let mut a = DramStats {
            reads: 3,
            writes: 1,
            bank_conflicts: 2,
            row_hits: 0,
            bus_busy_cycles: 4,
            last_activity: Some(Cycle::new(10)),
        };
        let b = DramStats {
            reads: 5,
            writes: 0,
            bank_conflicts: 1,
            row_hits: 2,
            bus_busy_cycles: 6,
            last_activity: Some(Cycle::new(7)),
        };
        a.merge_from(&b);
        assert_eq!(a.reads, 8);
        assert_eq!(a.accesses(), 9);
        assert_eq!(a.bank_conflicts, 3);
        assert_eq!(a.row_hits, 2);
        assert_eq!(a.bus_busy_cycles, 10);
        assert_eq!(a.last_activity, Some(Cycle::new(10)));
        let mut empty = DramStats::default();
        empty.merge_from(&a);
        assert_eq!(empty, a, "merging into fresh stats is a copy");
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DramStats::default();
        assert_eq!(s.bus_efficiency(Cycle::ZERO), 0.0);
        assert_eq!(s.conflict_rate(), 0.0);
    }
}
