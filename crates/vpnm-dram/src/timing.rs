//! Bank timing models.
//!
//! The paper's analysis abstracts all DRAM timing into a single parameter
//! `L`: "the ratio of bank access time to data transfer time … the number
//! of accesses that will have to be skipped before a bank conflict can be
//! resolved" (Section 3.1), with `L = 20` assumed throughout. We implement
//! that model as [`SimpleTiming`], and additionally an open-page model with
//! explicit `tRCD`/`tCAS`/`tRP` components ([`TimingModel::OpenPage`]) for
//! experiments that care about row locality.

/// How long a bank access keeps the bank busy.
pub trait TimingPolicy {
    /// Busy cycles for an access to `row`, given the currently open row
    /// (`None` = bank idle/precharged). Also returns whether this access
    /// was a row-buffer hit.
    fn access_cycles(&self, open_row: Option<u64>, row: u64) -> (u64, bool);

    /// Cycles the shared data bus is occupied per transfer.
    fn transfer_cycles(&self) -> u64;

    /// The paper's `L`: worst-case bank busy time over transfer time.
    fn l_ratio(&self) -> u64;
}

/// The paper's model: every access occupies its bank for exactly `L`
/// cycles; one cycle per bus transfer.
///
/// ```
/// use vpnm_dram::timing::{SimpleTiming, TimingPolicy};
/// let t = SimpleTiming::new(20);
/// assert_eq!(t.access_cycles(None, 7), (20, false));
/// assert_eq!(t.access_cycles(Some(7), 7), (20, false)); // no row-hit shortcut
/// assert_eq!(t.l_ratio(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimpleTiming {
    access: u64,
}

impl SimpleTiming {
    /// Creates a model with `access` busy cycles per access (the paper's
    /// `L`).
    ///
    /// # Panics
    ///
    /// Panics if `access == 0`.
    pub fn new(access: u64) -> Self {
        assert!(access > 0, "access latency must be positive");
        SimpleTiming { access }
    }
}

impl TimingPolicy for SimpleTiming {
    fn access_cycles(&self, _open_row: Option<u64>, _row: u64) -> (u64, bool) {
        (self.access, false)
    }

    fn transfer_cycles(&self) -> u64 {
        1
    }

    fn l_ratio(&self) -> u64 {
        self.access
    }
}

/// An open-page timing model with distinct row-hit / row-miss / row-conflict
/// latencies, as in SDRAM/DDR parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenPageTiming {
    /// Row-activate latency (precharged bank → row open).
    pub t_rcd: u64,
    /// Column access latency once the row is open.
    pub t_cas: u64,
    /// Precharge latency (close an open row).
    pub t_rp: u64,
    /// Bus cycles per transfer.
    pub burst: u64,
}

impl OpenPageTiming {
    /// PC133-class SDRAM: the part the paper cites as reaching only ~60%
    /// efficiency due to bank conflicts.
    pub fn sdram_pc133() -> Self {
        OpenPageTiming { t_rcd: 3, t_cas: 3, t_rp: 3, burst: 1 }
    }

    /// RDRAM-class timing with deeper pipelining.
    pub fn rdram() -> Self {
        OpenPageTiming { t_rcd: 7, t_cas: 8, t_rp: 5, burst: 1 }
    }
}

impl TimingPolicy for OpenPageTiming {
    fn access_cycles(&self, open_row: Option<u64>, row: u64) -> (u64, bool) {
        match open_row {
            Some(r) if r == row => (self.t_cas, true),
            Some(_) => (self.t_rp + self.t_rcd + self.t_cas, false),
            None => (self.t_rcd + self.t_cas, false),
        }
    }

    fn transfer_cycles(&self) -> u64 {
        self.burst
    }

    fn l_ratio(&self) -> u64 {
        // worst case: row conflict
        (self.t_rp + self.t_rcd + self.t_cas).div_euclid(self.burst.max(1))
    }
}

/// A closed enum over the supported timing models so configs stay plain
/// data (no trait objects in [`crate::DramConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingModel {
    /// The paper's fixed-`L` model.
    Simple(SimpleTiming),
    /// Open-page model with row-buffer hits.
    OpenPage(OpenPageTiming),
}

impl TimingModel {
    /// Fixed-`L` model shorthand.
    pub fn simple(l: u64) -> Self {
        TimingModel::Simple(SimpleTiming::new(l))
    }
}

impl TimingPolicy for TimingModel {
    fn access_cycles(&self, open_row: Option<u64>, row: u64) -> (u64, bool) {
        match self {
            TimingModel::Simple(t) => t.access_cycles(open_row, row),
            TimingModel::OpenPage(t) => t.access_cycles(open_row, row),
        }
    }

    fn transfer_cycles(&self) -> u64 {
        match self {
            TimingModel::Simple(t) => t.transfer_cycles(),
            TimingModel::OpenPage(t) => t.transfer_cycles(),
        }
    }

    fn l_ratio(&self) -> u64 {
        match self {
            TimingModel::Simple(t) => t.l_ratio(),
            TimingModel::OpenPage(t) => t.l_ratio(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_timing_constant() {
        let t = SimpleTiming::new(15);
        assert_eq!(t.access_cycles(None, 0), (15, false));
        assert_eq!(t.access_cycles(Some(5), 5), (15, false));
        assert_eq!(t.transfer_cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn simple_timing_rejects_zero() {
        let _ = SimpleTiming::new(0);
    }

    #[test]
    fn open_page_distinguishes_hit_miss_conflict() {
        let t = OpenPageTiming::sdram_pc133();
        let (hit, was_hit) = t.access_cycles(Some(4), 4);
        let (miss, _) = t.access_cycles(None, 4);
        let (conflict, was_conf_hit) = t.access_cycles(Some(9), 4);
        assert!(was_hit);
        assert!(!was_conf_hit);
        assert!(hit < miss && miss < conflict);
        assert_eq!(hit, 3);
        assert_eq!(miss, 6);
        assert_eq!(conflict, 9);
    }

    #[test]
    fn l_ratio_is_worst_case() {
        assert_eq!(OpenPageTiming::sdram_pc133().l_ratio(), 9);
        assert_eq!(TimingModel::simple(20).l_ratio(), 20);
    }

    #[test]
    fn enum_dispatch_matches_inner() {
        let inner = OpenPageTiming::rdram();
        let model = TimingModel::OpenPage(inner);
        assert_eq!(model.access_cycles(Some(1), 1), inner.access_cycles(Some(1), 1));
        assert_eq!(model.transfer_cycles(), inner.transfer_cycles());
    }
}
