//! The assembled DRAM device: banks + data bus + storage.

use crate::bank::{AccessKind, Bank};
use crate::config::DramConfig;
use crate::stats::DramStats;
use crate::storage::SparseStorage;
use crate::timing::TimingPolicy;
use bytes::Bytes;
use std::fmt;
use vpnm_sim::Cycle;

/// Why a DRAM command could not be accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramError {
    /// The target bank is busy with a previous access until `free_at` —
    /// a bank conflict (paper Section 3.1).
    BankBusy {
        /// Bank that was busy.
        bank: u32,
        /// When it becomes free.
        free_at: Cycle,
    },
    /// The shared data bus is occupied until `free_at`.
    BusBusy {
        /// When the bus frees.
        free_at: Cycle,
    },
    /// Bank index ≥ configured bank count.
    BadBank {
        /// Offending bank index.
        bank: u32,
        /// Configured number of banks.
        num_banks: u32,
    },
    /// Cell offset outside the bank.
    BadOffset {
        /// Offending cell offset.
        offset: u64,
        /// Cells per bank.
        cells_per_bank: u64,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::BankBusy { bank, free_at } => {
                write!(f, "bank {bank} busy until {free_at}")
            }
            DramError::BusBusy { free_at } => write!(f, "data bus busy until {free_at}"),
            DramError::BadBank { bank, num_banks } => {
                write!(f, "bank index {bank} out of range (device has {num_banks} banks)")
            }
            DramError::BadOffset { offset, cells_per_bank } => {
                write!(f, "cell offset {offset} out of range (bank holds {cells_per_bank} cells)")
            }
        }
    }
}

impl std::error::Error for DramError {}

/// Result of an accepted read: the data and when it is available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadGrant {
    /// Cycle at which the data appears on the bus. The simulator hands the
    /// bytes over immediately; a well-behaved caller must not *act* on them
    /// before `data_ready_at`.
    pub data_ready_at: Cycle,
    /// The cell contents (refcounted handle into device storage).
    pub data: Bytes,
}

/// A banked DRAM device with a shared data bus.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct DramDevice {
    config: DramConfig,
    banks: Vec<Bank>,
    storage: SparseStorage,
    stats: DramStats,
    /// `log2(cells_per_row)` when the row width is a power of two, letting
    /// the per-access row mapping shift instead of divide.
    row_shift: Option<u32>,
    /// Cached `config.cells_per_bank()` — re-deriving it costs a multiply
    /// on every access's range check and cell-index computation.
    cells_per_bank: u64,
}

impl DramDevice {
    /// Creates a device from a validated config.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    pub fn new(config: DramConfig) -> Self {
        config.validate().expect("invalid DramConfig");
        let banks = (0..config.num_banks).map(|_| Bank::new()).collect();
        let storage = SparseStorage::new(config.cell_bytes);
        let row_shift =
            config.cells_per_row.is_power_of_two().then(|| config.cells_per_row.trailing_zeros());
        let cells_per_bank = config.cells_per_bank();
        DramDevice {
            config,
            banks,
            storage,
            stats: DramStats::default(),
            row_shift,
            cells_per_bank,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// True if `bank` can accept an access at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BadBank`] for an out-of-range index.
    pub fn is_bank_ready(&self, bank: u32, now: Cycle) -> Result<bool, DramError> {
        let b = self.bank_ref(bank)?;
        Ok(!b.is_busy(now))
    }

    fn bank_ref(&self, bank: u32) -> Result<&Bank, DramError> {
        self.banks
            .get(bank as usize)
            .ok_or(DramError::BadBank { bank, num_banks: self.config.num_banks })
    }

    #[inline]
    fn check_offset(&self, offset: u64) -> Result<(), DramError> {
        let cells = self.cells_per_bank;
        if offset >= cells {
            Err(DramError::BadOffset { offset, cells_per_bank: cells })
        } else {
            Ok(())
        }
    }

    #[inline]
    fn cell_index(&self, bank: u32, offset: u64) -> u64 {
        u64::from(bank) * self.cells_per_bank + offset
    }

    #[inline]
    fn row_of(&self, offset: u64) -> u64 {
        match self.row_shift {
            Some(s) => offset >> s,
            None => offset / self.config.cells_per_row,
        }
    }

    /// Issues a read of cell `offset` in `bank` at cycle `now`.
    ///
    /// # Errors
    ///
    /// [`DramError::BankBusy`] on a bank conflict, plus the range errors.
    pub fn issue_read(
        &mut self,
        bank: u32,
        offset: u64,
        now: Cycle,
    ) -> Result<ReadGrant, DramError> {
        match self.read_access(bank, offset, now)? {
            Ok(grant) => Ok(grant),
            Err(free_at) => {
                self.stats.bank_conflicts += 1;
                Err(DramError::BankBusy { bank, free_at })
            }
        }
    }

    /// Shared body of the read-issue variants: `Ok(Err(free_at))` signals
    /// a busy bank, which the public wrappers map to either a counted
    /// conflict or a silently wasted slot.
    #[inline]
    fn read_access(
        &mut self,
        bank: u32,
        offset: u64,
        now: Cycle,
    ) -> Result<Result<ReadGrant, Cycle>, DramError> {
        self.check_offset(offset)?;
        let row = self.row_of(offset);
        let num_banks = self.config.num_banks;
        let timing = self.config.timing;
        let b = self.banks.get_mut(bank as usize).ok_or(DramError::BadBank { bank, num_banks })?;
        let was_hits = b.row_hits();
        let done = match b.start_access(&timing, AccessKind::Read, row, now) {
            Ok(done) => done,
            Err(free_at) => return Ok(Err(free_at)),
        };
        self.stats.row_hits += b.row_hits() - was_hits;
        self.stats.reads += 1;
        self.stats.bus_busy_cycles += timing.transfer_cycles();
        self.stats.last_activity = Some(now);
        let data = self.storage.read(self.cell_index(bank, offset));
        Ok(Ok(ReadGrant { data_ready_at: done, data }))
    }

    /// Shared body of the write-issue variants (see
    /// [`DramDevice::read_access`]).
    #[inline]
    fn write_access(
        &mut self,
        bank: u32,
        offset: u64,
        data: Bytes,
        now: Cycle,
    ) -> Result<Result<Cycle, Cycle>, DramError> {
        self.check_offset(offset)?;
        let row = self.row_of(offset);
        let num_banks = self.config.num_banks;
        let timing = self.config.timing;
        let b = self.banks.get_mut(bank as usize).ok_or(DramError::BadBank { bank, num_banks })?;
        let was_hits = b.row_hits();
        let done = match b.start_access(&timing, AccessKind::Write, row, now) {
            Ok(done) => done,
            Err(free_at) => return Ok(Err(free_at)),
        };
        self.stats.row_hits += b.row_hits() - was_hits;
        self.stats.writes += 1;
        self.stats.bus_busy_cycles += timing.transfer_cycles();
        self.stats.last_activity = Some(now);
        let idx = self.cell_index(bank, offset);
        self.storage.write(idx, data);
        Ok(Ok(done))
    }

    /// [`DramDevice::issue_read`] that treats a busy bank as a wasted
    /// scheduler slot rather than a conflict: returns `Ok(None)` without
    /// touching stats (matching an `is_bank_ready` pre-check, in one
    /// busy test instead of two).
    ///
    /// # Errors
    ///
    /// The same range errors as [`DramDevice::issue_read`].
    #[inline]
    pub fn try_issue_read(
        &mut self,
        bank: u32,
        offset: u64,
        now: Cycle,
    ) -> Result<Option<ReadGrant>, DramError> {
        Ok(self.read_access(bank, offset, now)?.ok())
    }

    /// [`DramDevice::issue_write`] with the same wasted-slot semantics as
    /// [`DramDevice::try_issue_read`]: `Ok(None)` on a busy bank, no
    /// conflict counted.
    ///
    /// # Errors
    ///
    /// The same range errors as [`DramDevice::issue_write`].
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the configured cell size.
    pub fn try_issue_write(
        &mut self,
        bank: u32,
        offset: u64,
        data: impl Into<Bytes>,
        now: Cycle,
    ) -> Result<Option<Cycle>, DramError> {
        Ok(self.write_access(bank, offset, data.into(), now)?.ok())
    }

    /// Issues a write of `data` into cell `offset` of `bank` at `now`,
    /// returning the completion cycle.
    ///
    /// # Errors
    ///
    /// [`DramError::BankBusy`] on a bank conflict, plus the range errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the configured cell size.
    pub fn issue_write(
        &mut self,
        bank: u32,
        offset: u64,
        data: impl Into<Bytes>,
        now: Cycle,
    ) -> Result<Cycle, DramError> {
        match self.write_access(bank, offset, data.into(), now)? {
            Ok(done) => Ok(done),
            Err(free_at) => {
                self.stats.bank_conflicts += 1;
                Err(DramError::BankBusy { bank, free_at })
            }
        }
    }

    /// Direct (zero-time) backdoor read for test oracles and debugging —
    /// does not touch bank state or stats.
    pub fn peek(&self, bank: u32, offset: u64) -> Bytes {
        self.storage.read(self.cell_index(bank, offset))
    }

    /// Direct (zero-time) backdoor write for preloading test contents.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the configured cell size.
    pub fn poke(&mut self, bank: u32, offset: u64, data: impl Into<Bytes>) {
        let idx = self.cell_index(bank, offset);
        self.storage.write(idx, data);
    }

    /// Per-bank access counts (for balance checks).
    pub fn bank_access_counts(&self) -> Vec<u64> {
        self.banks.iter().map(Bank::accesses).collect()
    }

    /// Lists every populated `(bank, offset)` cell, in arbitrary order —
    /// the walk a re-keying data migration performs.
    pub fn populated(&self) -> Vec<(u32, u64)> {
        let per_bank = self.config.cells_per_bank();
        self.storage
            .populated_indices()
            .map(|idx| ((idx / per_bank) as u32, idx % per_bank))
            .collect()
    }

    /// Zero-time backdoor removal of a cell (re-keying migration).
    /// Returns the previous contents if the cell was populated.
    pub fn take(&mut self, bank: u32, offset: u64) -> Option<Bytes> {
        let idx = self.cell_index(bank, offset);
        self.storage.take(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingModel;

    fn tiny() -> DramDevice {
        DramDevice::new(DramConfig::tiny_test()) // 4 banks, L=3, 8B cells
    }

    #[test]
    fn read_after_write_roundtrips() {
        let mut d = tiny();
        let done = d.issue_write(1, 3, vec![9, 9, 9], Cycle::new(0)).unwrap();
        assert_eq!(done, Cycle::new(3));
        let g = d.issue_read(1, 3, done).unwrap();
        assert_eq!(g.data, vec![9, 9, 9, 0, 0, 0, 0, 0]);
        assert_eq!(g.data_ready_at, Cycle::new(6));
    }

    #[test]
    fn conflict_on_same_bank_not_on_other() {
        let mut d = tiny();
        d.issue_read(0, 0, Cycle::new(0)).unwrap();
        let err = d.issue_read(0, 1, Cycle::new(1)).unwrap_err();
        assert!(
            matches!(err, DramError::BankBusy { bank: 0, free_at } if free_at == Cycle::new(3))
        );
        // different bank at the same time is fine
        d.issue_read(1, 1, Cycle::new(1)).unwrap();
        assert_eq!(d.stats().bank_conflicts, 1);
        assert_eq!(d.stats().reads, 2);
    }

    #[test]
    fn range_validation() {
        let mut d = tiny();
        assert!(matches!(
            d.issue_read(7, 0, Cycle::ZERO),
            Err(DramError::BadBank { bank: 7, num_banks: 4 })
        ));
        assert!(matches!(d.issue_read(0, 10_000, Cycle::ZERO), Err(DramError::BadOffset { .. })));
        assert!(d.is_bank_ready(9, Cycle::ZERO).is_err());
    }

    #[test]
    fn peek_poke_bypass_timing() {
        let mut d = tiny();
        d.poke(2, 5, vec![1, 2, 3]);
        assert_eq!(&d.peek(2, 5)[..3], &[1, 2, 3]);
        assert_eq!(d.stats().accesses(), 0);
    }

    #[test]
    fn distinct_banks_have_distinct_cells() {
        let mut d = tiny();
        d.poke(0, 5, vec![1]);
        d.poke(1, 5, vec![2]);
        assert_eq!(d.peek(0, 5)[0], 1);
        assert_eq!(d.peek(1, 5)[0], 2);
    }

    #[test]
    fn bus_efficiency_accumulates() {
        let mut d = tiny();
        let mut now = Cycle::ZERO;
        for i in 0..4u32 {
            now = d.issue_write(i, 0, vec![0], now).unwrap();
        }
        // 4 transfers of 1 cycle each over 12 elapsed cycles
        assert!((d.stats().bus_efficiency(now) - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn open_page_stats_count_row_hits() {
        let cfg = DramConfig::tiny_test()
            .with_timing(TimingModel::OpenPage(crate::timing::OpenPageTiming::sdram_pc133()));
        let mut d = DramDevice::new(cfg);
        let t1 = d.issue_read(0, 0, Cycle::ZERO).unwrap().data_ready_at;
        let t2 = d.issue_read(0, 1, t1).unwrap().data_ready_at; // same row (4 cells/row)
        assert_eq!(d.stats().row_hits, 1);
        let _ = d.issue_read(0, 15, t2).unwrap(); // row 3 — miss
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn error_messages_render() {
        let e = DramError::BankBusy { bank: 1, free_at: Cycle::new(9) };
        assert!(e.to_string().contains("bank 1 busy"));
        let e = DramError::BadOffset { offset: 9, cells_per_bank: 4 };
        assert!(e.to_string().contains("out of range"));
    }
}
