//! Sparse backing storage for simulated DRAM cells.
//!
//! A 160 Gbps packet buffer needs 4 GB of DRAM (paper Section 5.4.1); the
//! simulator cannot allocate that eagerly, so cells are materialized on
//! first write. Reads of never-written cells return zeroes, matching the
//! "fresh DRAM" abstraction the rest of the stack assumes.
//!
//! Cells are stored as [`bytes::Bytes`]: a read hands back a refcounted
//! clone of the stored cell (or of a single shared zero cell), so the
//! steady-state read path performs no allocation or copying at all.
//! Padding to the cell size happens once, at write time.

use bytes::Bytes;
use vpnm_hash::fast::FastHashMap;

/// Sparse map from cell index to cell contents.
///
/// ```
/// use vpnm_dram::SparseStorage;
/// let mut s = SparseStorage::new(8);
/// assert_eq!(s.read(42), vec![0u8; 8]); // untouched cells read as zero
/// s.write(42, b"abc".to_vec());
/// assert_eq!(&s.read(42)[..3], b"abc");
/// assert_eq!(s.populated_cells(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseStorage {
    cells: FastHashMap<u64, Bytes>,
    cell_bytes: usize,
    /// One shared zero cell handed to every read of an unwritten index.
    zero: Bytes,
}

impl SparseStorage {
    /// Creates storage with `cell_bytes` bytes per cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell_bytes == 0`.
    pub fn new(cell_bytes: usize) -> Self {
        assert!(cell_bytes > 0, "cell_bytes must be positive");
        // Cells no larger than the static pool clone the zero cell without
        // touching a reference count — at line rate every read of
        // never-written memory hands out one of these, so keeping the
        // clone free of atomic traffic matters.
        static ZEROS: [u8; 4096] = [0u8; 4096];
        let zero = if cell_bytes <= ZEROS.len() {
            Bytes::from_static(&ZEROS[..cell_bytes])
        } else {
            Bytes::from(vec![0u8; cell_bytes])
        };
        SparseStorage { cells: FastHashMap::default(), cell_bytes, zero }
    }

    /// Bytes per cell.
    pub fn cell_bytes(&self) -> usize {
        self.cell_bytes
    }

    /// Reads cell `index`, zero-filled if never written. The returned
    /// handle shares the stored cell — no bytes are copied.
    #[inline]
    pub fn read(&self, index: u64) -> Bytes {
        // Fast path for never-written memory (read-heavy simulations):
        // skip the hash probe entirely while the map is empty.
        if self.cells.is_empty() {
            return self.zero.clone();
        }
        match self.cells.get(&index) {
            Some(data) => data.clone(),
            None => self.zero.clone(),
        }
    }

    /// Writes cell `index`. Short data is zero-padded to the cell size
    /// (the only copy on the write path).
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the cell size.
    pub fn write(&mut self, index: u64, data: impl Into<Bytes>) {
        let data = data.into();
        assert!(
            data.len() <= self.cell_bytes,
            "write of {} bytes exceeds cell size {}",
            data.len(),
            self.cell_bytes
        );
        let cell = if data.len() == self.cell_bytes {
            data
        } else {
            let mut padded = data.to_vec();
            padded.resize(self.cell_bytes, 0);
            Bytes::from(padded)
        };
        self.cells.insert(index, cell);
    }

    /// Number of cells that have been written at least once.
    pub fn populated_cells(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over the indices of populated cells (arbitrary order).
    pub fn populated_indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.cells.keys().copied()
    }

    /// Removes a cell entirely (subsequent reads see zeroes). Returns its
    /// previous contents if it was populated.
    pub fn take(&mut self, index: u64) -> Option<Bytes> {
        self.cells.remove(&index)
    }

    /// Drops all contents.
    pub fn clear(&mut self) {
        self.cells.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let s = SparseStorage::new(4);
        assert_eq!(s.read(0), vec![0, 0, 0, 0]);
        assert_eq!(s.populated_cells(), 0);
    }

    #[test]
    fn write_pads_short_data() {
        let mut s = SparseStorage::new(4);
        s.write(1, vec![0xAA]);
        assert_eq!(s.read(1), vec![0xAA, 0, 0, 0]);
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = SparseStorage::new(2);
        s.write(5, vec![1, 2]);
        s.write(5, vec![3]);
        assert_eq!(s.read(5), vec![3, 0]);
        assert_eq!(s.populated_cells(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds cell size")]
    fn oversized_write_panics() {
        let mut s = SparseStorage::new(2);
        s.write(0, vec![1, 2, 3]);
    }

    #[test]
    fn clear_empties() {
        let mut s = SparseStorage::new(1);
        s.write(9, vec![7]);
        s.clear();
        assert_eq!(s.populated_cells(), 0);
        assert_eq!(s.read(9), vec![0]);
    }

    #[test]
    fn reads_share_storage_without_copying() {
        let mut s = SparseStorage::new(4);
        s.write(3, vec![1, 2, 3, 4]);
        let a = s.read(3);
        let b = s.read(3);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr(), "same backing cell");
        // unwritten reads all share the one zero cell
        let z1 = s.read(100);
        let z2 = s.read(200);
        assert_eq!(z1.as_slice().as_ptr(), z2.as_slice().as_ptr(), "shared zero cell");
    }

    #[test]
    fn full_size_write_is_not_recopied() {
        let mut s = SparseStorage::new(4);
        let payload = Bytes::from(vec![9u8, 9, 9, 9]);
        let ptr = payload.as_slice().as_ptr();
        s.write(7, payload);
        assert_eq!(s.read(7).as_slice().as_ptr(), ptr, "stored without padding copy");
    }
}
