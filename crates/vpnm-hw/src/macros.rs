//! Raw SRAM / CAM macro models.
//!
//! First-order models at 0.13 µm: a 6T SRAM cell is ~2.5 µm²/bit and a
//! ternary-capable CAM cell roughly twice that, plus per-macro periphery
//! (decoders, sense amplifiers) that grows with the perimeter. These are
//! the building blocks the calibrated controller model (and the baseline
//! packet-buffer area comparisons) are assembled from.

/// 6T SRAM cell area at 0.13 µm, µm² per bit.
pub const SRAM_CELL_UM2_013: f64 = 2.5;

/// CAM cell area at 0.13 µm, µm² per bit (9–10T search-capable cell).
pub const CAM_CELL_UM2_013: f64 = 5.0;

/// Dynamic read energy at 0.13 µm, pJ per bit accessed (order of
/// magnitude; calibrated factors absorb the residual).
pub const SRAM_READ_PJ_PER_BIT: f64 = 0.05;

/// An SRAM macro: `entries × bits_per_entry` with `ports` access ports.
///
/// ```
/// use vpnm_hw::SramMacro;
/// let m = SramMacro::new(1024, 64, 1);
/// assert_eq!(m.bits(), 65536);
/// assert!(m.area_um2() > 65536.0 * 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramMacro {
    entries: u64,
    bits_per_entry: u64,
    ports: u32,
}

impl SramMacro {
    /// Creates a macro description.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or zero ports.
    pub fn new(entries: u64, bits_per_entry: u64, ports: u32) -> Self {
        assert!(
            entries > 0 && bits_per_entry > 0 && ports > 0,
            "macro dimensions must be positive"
        );
        SramMacro { entries, bits_per_entry, ports }
    }

    /// Total storage bits.
    pub fn bits(&self) -> u64 {
        self.entries * self.bits_per_entry
    }

    /// Total bytes (rounded up).
    pub fn bytes(&self) -> u64 {
        self.bits().div_ceil(8)
    }

    /// Estimated area in µm². Multi-porting grows the cell roughly
    /// linearly; periphery grows with the array perimeter.
    pub fn area_um2(&self) -> f64 {
        let port_factor = 1.0 + 0.7 * f64::from(self.ports - 1);
        let cell_area = self.bits() as f64 * SRAM_CELL_UM2_013 * port_factor;
        let periphery = 50.0 * ((self.entries as f64).sqrt() + (self.bits_per_entry as f64).sqrt());
        cell_area + periphery + 200.0
    }

    /// Estimated dynamic energy per access in pJ (reads one entry).
    pub fn access_energy_pj(&self) -> f64 {
        self.bits_per_entry as f64 * SRAM_READ_PJ_PER_BIT + 0.002 * (self.entries as f64)
        // word-line/decode overhead
    }
}

/// A CAM macro: fully associative search over `entries × tag_bits`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CamMacro {
    entries: u64,
    tag_bits: u64,
}

impl CamMacro {
    /// Creates a CAM description.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(entries: u64, tag_bits: u64) -> Self {
        assert!(entries > 0 && tag_bits > 0, "macro dimensions must be positive");
        CamMacro { entries, tag_bits }
    }

    /// Total search bits.
    pub fn bits(&self) -> u64 {
        self.entries * self.tag_bits
    }

    /// Estimated area in µm².
    pub fn area_um2(&self) -> f64 {
        self.bits() as f64 * CAM_CELL_UM2_013 + 80.0 * (self.entries as f64).sqrt() + 200.0
    }

    /// Estimated dynamic energy per search in pJ — every entry compares in
    /// parallel, so energy scales with total bits.
    pub fn search_energy_pj(&self) -> f64 {
        self.bits() as f64 * SRAM_READ_PJ_PER_BIT * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_sizes_scale() {
        let small = SramMacro::new(16, 8, 1);
        let big = SramMacro::new(1024, 64, 1);
        assert!(big.area_um2() > small.area_um2() * 100.0);
        assert_eq!(small.bytes(), 16);
        assert_eq!(SramMacro::new(3, 3, 1).bytes(), 2); // 9 bits → 2 bytes
    }

    #[test]
    fn dual_port_costs_more() {
        let sp = SramMacro::new(256, 32, 1);
        let dp = SramMacro::new(256, 32, 2);
        assert!(dp.area_um2() > sp.area_um2() * 1.5);
    }

    #[test]
    fn cam_denser_than_nothing_pricier_than_sram() {
        let cam = CamMacro::new(64, 32);
        let sram = SramMacro::new(64, 32, 1);
        assert!(cam.area_um2() > sram.area_um2());
        assert!(cam.search_energy_pj() > sram.access_energy_pj());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_entries_rejected() {
        let _ = SramMacro::new(0, 8, 1);
    }
}
