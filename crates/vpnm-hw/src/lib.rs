//! Hardware overhead model for VPNM bank controllers (paper Section 5.3).
//!
//! The paper sizes its design space with "a hardware overhead analysis tool
//! for our bank controller architecture that takes these design parameters
//! (B, L, K, Q, R, tech) as inputs and provides area and energy consumption
//! for the set of all bank controllers", built on Cacti 3.0 and a
//! synthesizable Verilog model at 0.13 µm. Cacti 3.0 and Synopsys are not
//! available here, so this crate substitutes an **analytic SRAM/CAM bit
//! model calibrated by least squares to the paper's published reference
//! points** (the 0.15 mm² single-controller example and the Table 2 rows).
//! The calibration reproduces the paper's numbers closely and — more
//! importantly — preserves the *shape* of the area/MTS trade-off that the
//! design-space conclusions (Figure 7, Table 2) rest on.
//!
//! # Example
//!
//! ```
//! use vpnm_hw::{ControllerParams, estimate};
//!
//! // The paper's Table 2 top row: B=32, Q=24, K=48 at R=1.3 → ~13.6 mm².
//! let params = ControllerParams { banks: 32, queue_entries: 24, storage_rows: 48,
//!                                 bus_ratio: 1.3, ..ControllerParams::paper_default() };
//! let hw = estimate(&params);
//! assert!((hw.total_area_mm2 - 13.6).abs() / 13.6 < 0.15);
//! ```

#![warn(missing_docs)]

pub mod calibrate;
pub mod macros;
pub mod params;

pub use calibrate::CALIBRATION_013UM;
pub use macros::{CamMacro, SramMacro};
pub use params::{estimate, ControllerParams, HwEstimate};
