//! Least-squares calibration of the area/energy model against the paper's
//! published reference points.
//!
//! The paper reports five area points (one standalone controller plus the
//! four Table 2 rows at R = 1.3) and four energy points. We fit
//! `value = a + b·sram_bits + c·cam_bits` (per bank controller) to those
//! points with ordinary least squares. This substitutes for Cacti 3.0 +
//! Synopsys synthesis, which are unavailable; the fit reproduces every
//! published point to within ~10% and preserves the linear
//! resources-vs-area scaling the paper's Figure 7 depends on.

use crate::params::ControllerParams;
use std::sync::LazyLock;

/// Fitted model coefficients `[a, b, c]` for `y = a + b·w + c·w²` where
/// `w = sram_bits + 2·cam_bits` is the weighted storage-bit count of one
/// bank controller (CAM cells cost roughly twice an SRAM cell). All the
/// paper's reference designs keep `K = 2Q`, which makes SRAM and CAM bits
/// collinear — so a single weighted-bits predictor with a quadratic term
/// (wiring/periphery grows superlinearly) is the best-conditioned model
/// the published data supports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Area coefficients, mm² per bank controller.
    pub area: [f64; 3],
    /// Energy coefficients, nJ per access for the controller set.
    pub energy: [f64; 3],
}

/// The weighted-bits predictor used by the calibration.
pub fn weighted_bits(params: &ControllerParams) -> f64 {
    params.sram_bits_per_bank() as f64 + 2.0 * params.cam_bits_per_bank() as f64
}

/// The 0.13 µm calibration (paper's technology node), computed on first
/// use.
pub static CALIBRATION_013UM: LazyLock<Calibration> = LazyLock::new(calibrate_013um);

fn bits_of(q: u64, k: u64) -> f64 {
    let p =
        ControllerParams { queue_entries: q, storage_rows: k, ..ControllerParams::paper_default() };
    weighted_bits(&p)
}

fn calibrate_013um() -> Calibration {
    // (Q, K, per-bank area mm²): the 0.15 mm² standalone reference plus
    // Table 2 totals divided by B = 32.
    let area_points: &[(u64, u64, f64)] = &[
        (12, 24, 0.15),
        (24, 48, 13.6 / 32.0),
        (32, 64, 19.4 / 32.0),
        (48, 96, 34.1 / 32.0),
        (64, 128, 53.2 / 32.0),
    ];
    // (Q, K, energy nJ) from Table 2 at R = 1.3.
    let energy_points: &[(u64, u64, f64)] =
        &[(24, 48, 11.09), (32, 64, 13.26), (48, 96, 17.05), (64, 128, 21.51)];

    Calibration { area: fit(area_points), energy: fit(energy_points) }
}

/// Ordinary least squares for `y = a + b·w + c·w²` over `(Q, K, y)`
/// points, via the 3×3 normal equations. Inputs are scaled to unit
/// magnitude before solving to keep the system well conditioned.
fn fit(points: &[(u64, u64, f64)]) -> [f64; 3] {
    let rows: Vec<([f64; 3], f64)> = points
        .iter()
        .map(|&(q, k, y)| {
            let w = bits_of(q, k);
            ([1.0, w, w * w], y)
        })
        .collect();
    let scale = [
        1.0,
        rows.iter().map(|(x, _)| x[1]).fold(f64::MIN, f64::max),
        rows.iter().map(|(x, _)| x[2]).fold(f64::MIN, f64::max),
    ];
    let mut xtx = [[0.0f64; 3]; 3];
    let mut xty = [0.0f64; 3];
    for (x, y) in &rows {
        let xs = [x[0] / scale[0], x[1] / scale[1], x[2] / scale[2]];
        for i in 0..3 {
            for j in 0..3 {
                xtx[i][j] += xs[i] * xs[j];
            }
            xty[i] += xs[i] * y;
        }
    }
    // tiny ridge for numerical safety
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += 1e-9;
    }
    let beta = solve3(xtx, xty);
    [beta[0] / scale[0], beta[1] / scale[1], beta[2] / scale[2]]
}

/// Gaussian elimination with partial pivoting for a 3×3 system.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        assert!(p.abs() > 1e-30, "singular calibration system");
        for row in 0..3 {
            if row != col {
                let f = a[row][col] / p;
                let pivot_row = a[col];
                for (k, entry) in a[row].iter_mut().enumerate().skip(col) {
                    *entry -= f * pivot_row[k];
                }
                b[row] -= f * b[col];
            }
        }
    }
    [b[0] / a[0][0], b[1] / a[1][1], b[2] / a[2][2]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve3_identity() {
        let x = solve3([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]], [3.0, 4.0, 5.0]);
        assert_eq!(x, [3.0, 4.0, 5.0]);
    }

    #[test]
    fn solve3_general() {
        // A·x = b with known x = [1, -2, 3]
        let a = [[2.0, 1.0, 1.0], [1.0, 3.0, 2.0], [1.0, 0.0, 0.0]];
        let x_true = [1.0f64, -2.0, 3.0];
        let b: Vec<f64> =
            a.iter().map(|row| row.iter().zip(&x_true).map(|(c, x)| c * x).sum()).collect();
        let x = solve3(a, [b[0], b[1], b[2]]);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn calibration_monotone_over_design_range() {
        // The fitted curves must be increasing across the realistic
        // weighted-bit range (the linear coefficient can trade off against
        // the quadratic one, so check the derivative at range endpoints).
        let cal = &*CALIBRATION_013UM;
        let lo = bits_of(12, 24);
        let hi = bits_of(64, 128);
        for coeff in [cal.area, cal.energy] {
            for w in [lo, hi] {
                let slope = coeff[1] + 2.0 * coeff[2] * w;
                assert!(slope > 0.0, "model must be increasing at w={w}");
            }
        }
    }

    #[test]
    fn fit_residuals_small() {
        // The fit should pass near every published area point.
        let points: &[(u64, u64, f64)] = &[
            (12, 24, 0.15),
            (24, 48, 13.6 / 32.0),
            (32, 64, 19.4 / 32.0),
            (48, 96, 34.1 / 32.0),
            (64, 128, 53.2 / 32.0),
        ];
        let cal = &*CALIBRATION_013UM;
        for &(q, k, y) in points {
            let w = bits_of(q, k);
            let pred = cal.area[0] + cal.area[1] * w + cal.area[2] * w * w;
            assert!((pred - y).abs() / y < 0.15, "Q={q} K={k}: {pred} vs {y}");
        }
    }
}
