//! Controller parameters → storage-bit inventory → area/energy estimate.

use crate::calibrate::CALIBRATION_013UM;

/// The design parameters of a VPNM controller, as fed to the paper's
/// "hardware overhead analysis tool" (Section 5.3): `B`, `L`, `K`, `Q`,
/// `R`, plus the word sizes from Figure 3 (`A`-bit addresses, `W`-bit data
/// words, `C`-bit counters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerParams {
    /// Number of banks `B` (the controller replicates per bank).
    pub banks: u32,
    /// Bank access latency `L` in memory cycles.
    pub bank_latency: u64,
    /// Bank access queue entries `Q`.
    pub queue_entries: u64,
    /// Delay storage buffer rows `K`.
    pub storage_rows: u64,
    /// Bus scaling ratio `R`.
    pub bus_ratio: f64,
    /// Address width `A` in bits.
    pub addr_bits: u64,
    /// Data word width `W` in bits (the paper's 64-byte cells → 512).
    pub data_bits: u64,
    /// Redundant-request counter width `C` in bits.
    pub counter_bits: u64,
}

impl ControllerParams {
    /// The paper's fixed context: `B = 32`, `L = 20`, 32-bit addresses,
    /// 64-byte cells, 8-bit counters, `R = 1.3`, with the Table 2 optimum
    /// `Q = 64`, `K = 128`.
    pub fn paper_default() -> Self {
        ControllerParams {
            banks: 32,
            bank_latency: 20,
            queue_entries: 64,
            storage_rows: 128,
            bus_ratio: 1.3,
            addr_bits: 32,
            data_bits: 512,
            counter_bits: 8,
        }
    }

    /// Depth of the per-bank circular delay buffer: the normalized delay
    /// `D ≈ Q·B/R` in interface cycles.
    pub fn delay_entries(&self) -> u64 {
        ((self.queue_entries * u64::from(self.banks)) as f64 / self.bus_ratio).ceil() as u64
    }

    /// `ceil(log2 K)` — the width of a row id.
    pub fn row_id_bits(&self) -> u64 {
        u64::from(64 - (self.storage_rows.max(2) - 1).leading_zeros())
    }

    /// SRAM bits in ONE bank controller: delay-storage payload (valid +
    /// counter + data), bank access queue, write buffer, circular delay
    /// buffer.
    pub fn sram_bits_per_bank(&self) -> u64 {
        let dsb = self.storage_rows * (1 + self.counter_bits + self.data_bits);
        let baq = self.queue_entries * (1 + self.row_id_bits());
        let wb = self.queue_entries.div_ceil(2) * (self.addr_bits + self.data_bits);
        let cdb = self.delay_entries() * (1 + self.row_id_bits());
        dsb + baq + wb + cdb
    }

    /// CAM bits in ONE bank controller: the delay-storage address match
    /// array.
    pub fn cam_bits_per_bank(&self) -> u64 {
        self.storage_rows * self.addr_bits
    }
}

impl Default for ControllerParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Area and energy estimate for a full set of bank controllers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwEstimate {
    /// Area of one bank controller, mm².
    pub area_mm2_per_bank: f64,
    /// Area of all `B` bank controllers, mm² (the paper's Figure 7 /
    /// Table 2 quantity).
    pub total_area_mm2: f64,
    /// Energy per access across the controller set, nJ (Table 2).
    pub energy_nj: f64,
    /// SRAM bits per bank controller.
    pub sram_bits_per_bank: u64,
    /// CAM bits per bank controller.
    pub cam_bits_per_bank: u64,
}

impl HwEstimate {
    /// Total controller SRAM in kilobytes (all banks).
    pub fn sram_kib_total(&self, banks: u32) -> f64 {
        (self.sram_bits_per_bank * u64::from(banks)) as f64 / 8.0 / 1024.0
    }
}

/// Estimates area and energy for `params` using the 0.13 µm calibration.
pub fn estimate(params: &ControllerParams) -> HwEstimate {
    let cal = &*CALIBRATION_013UM;
    let w = crate::calibrate::weighted_bits(params);
    let per_bank = (cal.area[0] + cal.area[1] * w + cal.area[2] * w * w).max(0.0);
    let energy = (cal.energy[0] + cal.energy[1] * w + cal.energy[2] * w * w).max(0.0);
    HwEstimate {
        area_mm2_per_bank: per_bank,
        total_area_mm2: per_bank * f64::from(params.banks),
        energy_nj: energy,
        sram_bits_per_bank: params.sram_bits_per_bank(),
        cam_bits_per_bank: params.cam_bits_per_bank(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2_params(q: u64, k: u64) -> ControllerParams {
        ControllerParams { queue_entries: q, storage_rows: k, ..ControllerParams::paper_default() }
    }

    #[test]
    fn reference_point_single_controller() {
        // Paper: "one bank controller … with L = 20, K = 24, and Q = 12,
        // occupies 0.15 mm²."
        let p = table2_params(12, 24);
        let hw = estimate(&p);
        assert!(
            (hw.area_mm2_per_bank - 0.15).abs() / 0.15 < 0.25,
            "got {} mm²",
            hw.area_mm2_per_bank
        );
    }

    #[test]
    fn table2_rows_reproduced() {
        // (Q, K, paper total area mm², paper energy nJ) at R = 1.3
        let rows = [
            (24, 48, 13.6, 11.09),
            (32, 64, 19.4, 13.26),
            (48, 96, 34.1, 17.05),
            (64, 128, 53.2, 21.51),
        ];
        for (q, k, area, energy) in rows {
            let hw = estimate(&table2_params(q, k));
            let area_err = (hw.total_area_mm2 - area).abs() / area;
            let energy_err = (hw.energy_nj - energy).abs() / energy;
            assert!(area_err < 0.12, "Q={q} K={k}: area {} vs {area}", hw.total_area_mm2);
            assert!(energy_err < 0.12, "Q={q} K={k}: energy {} vs {energy}", hw.energy_nj);
        }
    }

    #[test]
    fn area_monotone_in_k_and_q() {
        let base = estimate(&table2_params(24, 48)).total_area_mm2;
        assert!(estimate(&table2_params(24, 96)).total_area_mm2 > base);
        assert!(estimate(&table2_params(48, 48)).total_area_mm2 > base);
    }

    #[test]
    fn delay_entries_formula() {
        let p = ControllerParams::paper_default();
        // Q=64, B=32, R=1.3 → ceil(2048/1.3) = 1576
        assert_eq!(p.delay_entries(), 1576);
    }

    #[test]
    fn row_id_bits() {
        assert_eq!(table2_params(12, 24).row_id_bits(), 5);
        assert_eq!(table2_params(12, 64).row_id_bits(), 6);
        assert_eq!(table2_params(12, 65).row_id_bits(), 7);
    }

    #[test]
    fn sram_kib_total_math() {
        let hw = estimate(&ControllerParams::paper_default());
        let expect = (hw.sram_bits_per_bank * 32) as f64 / 8192.0;
        assert!((hw.sram_kib_total(32) - expect).abs() < 1e-9);
    }
}
