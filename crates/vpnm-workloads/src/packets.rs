//! Synthetic packet traces and out-of-order TCP segment streams.
//!
//! Drives the two data-plane applications of paper Section 5.4: packet
//! buffering (multi-queue cell traffic) and TCP reassembly (out-of-order
//! segments with holes).

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Packet size model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeDistribution {
    /// Every packet has the same size.
    Fixed(u32),
    /// Internet-mix bimodal: mostly small (64 B) and large (1500 B)
    /// packets.
    Bimodal {
        /// Small-packet size in bytes.
        small: u32,
        /// Large-packet size in bytes.
        large: u32,
        /// Probability of a small packet.
        small_fraction_percent: u8,
    },
    /// Uniform over `[min, max]`.
    Uniform {
        /// Minimum size.
        min: u32,
        /// Maximum size.
        max: u32,
    },
}

impl SizeDistribution {
    /// The classic 64 B / 1500 B internet mix.
    pub fn internet_mix() -> Self {
        SizeDistribution::Bimodal { small: 64, large: 1500, small_fraction_percent: 60 }
    }

    fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            SizeDistribution::Fixed(s) => s,
            SizeDistribution::Bimodal { small, large, small_fraction_percent } => {
                if rng.gen_range(0..100) < u32::from(small_fraction_percent) {
                    small
                } else {
                    large
                }
            }
            SizeDistribution::Uniform { min, max } => rng.gen_range(min..=max),
        }
    }
}

/// A synthetic packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Flow (interface/queue) index.
    pub flow: u32,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Payload.
    pub payload: Bytes,
}

/// Trace configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketTraceConfig {
    /// Number of flows (queues/interfaces).
    pub num_flows: u32,
    /// Packet size model.
    pub sizes: SizeDistribution,
    /// RNG seed.
    pub seed: u64,
}

/// An infinite synthetic packet trace: each packet picks a uniform flow
/// and a size from the distribution; payload bytes are derived from
/// `(flow, seq)` so consumers can verify integrity.
#[derive(Debug)]
pub struct PacketTrace {
    config: PacketTraceConfig,
    rng: StdRng,
    next_seq: Vec<u64>,
}

impl PacketTrace {
    /// Creates a trace.
    ///
    /// # Panics
    ///
    /// Panics if `num_flows == 0`.
    pub fn new(config: PacketTraceConfig) -> Self {
        assert!(config.num_flows > 0, "need at least one flow");
        let rng = StdRng::seed_from_u64(config.seed);
        let next_seq = vec![0; config.num_flows as usize];
        PacketTrace { config, rng, next_seq }
    }

    /// Produces the next packet.
    pub fn next_packet(&mut self) -> Packet {
        let flow = self.rng.gen_range(0..self.config.num_flows);
        let size = self.config.sizes.sample(&mut self.rng) as usize;
        let seq = self.next_seq[flow as usize];
        self.next_seq[flow as usize] += 1;
        Packet { flow, seq, payload: Bytes::from(payload_bytes(flow, seq, size)) }
    }
}

/// Deterministic payload for `(flow, seq)`.
pub fn payload_bytes(flow: u32, seq: u64, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    payload_extend(flow, seq, size, &mut out);
    out
}

/// Appends the `(flow, seq)` payload keystream to `out` without a fresh
/// allocation — byte-identical to [`payload_bytes`]. The serving loop
/// fills one shared epoch arena with this instead of allocating a
/// `Vec` per packet.
pub fn payload_extend(flow: u32, seq: u64, size: usize, out: &mut Vec<u8>) {
    out.reserve(size);
    let mut state = (u64::from(flow) << 40) ^ seq ^ 0x5EED;
    let mut written = 0usize;
    while written < size {
        state = vpnm_sim::rng::splitmix64(state);
        let take = (size - written).min(8);
        out.extend_from_slice(&state.to_le_bytes()[..take]);
        written += take;
    }
}

/// True when `data` is exactly the `(flow, seq)` payload of `size`
/// bytes — an allocation-free `data == payload_bytes(flow, seq, size)`
/// for the verify path.
pub fn payload_matches(flow: u32, seq: u64, size: usize, data: &[u8]) -> bool {
    if data.len() != size {
        return false;
    }
    let mut state = (u64::from(flow) << 40) ^ seq ^ 0x5EED;
    for chunk in data.chunks(8) {
        state = vpnm_sim::rng::splitmix64(state);
        if chunk != &state.to_le_bytes()[..chunk.len()] {
            return false;
        }
    }
    true
}

/// One TCP segment of a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Byte offset of this segment within the stream.
    pub offset: u64,
    /// Segment payload.
    pub data: Bytes,
}

/// Cuts a byte stream into segments and delivers them out of order within
/// a bounded reordering window — the adversarial input to TCP reassembly
/// (paper Section 5.4.2: "a clever attacker can craft out-of-sequence TCP
/// packets such that the worm/virus signature is intentionally divided on
/// the boundary of two reordered packets").
#[derive(Debug, Clone)]
pub struct OutOfOrderSegments {
    segments: Vec<Segment>,
    pos: usize,
}

impl OutOfOrderSegments {
    /// Segments `stream` into `segment_len`-byte pieces (last may be
    /// short) and shuffles each consecutive `window`-segment group.
    ///
    /// # Panics
    ///
    /// Panics if `segment_len == 0` or `window == 0` or the stream is
    /// empty.
    pub fn new(stream: &[u8], segment_len: usize, window: usize, seed: u64) -> Self {
        assert!(segment_len > 0 && window > 0, "degenerate segmentation");
        assert!(!stream.is_empty(), "stream must be non-empty");
        let mut segments: Vec<Segment> = stream
            .chunks(segment_len)
            .enumerate()
            .map(|(i, chunk)| Segment {
                offset: (i * segment_len) as u64,
                data: Bytes::copy_from_slice(chunk),
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for group in segments.chunks_mut(window) {
            group.shuffle(&mut rng);
        }
        OutOfOrderSegments { segments, pos: 0 }
    }

    /// Number of segments in total.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segments remain.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.segments.len()
    }

    /// Delivers the next segment, if any.
    pub fn next_segment(&mut self) -> Option<Segment> {
        let s = self.segments.get(self.pos).cloned()?;
        self.pos += 1;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sequences_are_per_flow() {
        let mut t = PacketTrace::new(PacketTraceConfig {
            num_flows: 4,
            sizes: SizeDistribution::Fixed(64),
            seed: 1,
        });
        let mut seen = [0u64; 4];
        for _ in 0..200 {
            let p = t.next_packet();
            assert_eq!(p.seq, seen[p.flow as usize], "per-flow sequence must be dense");
            seen[p.flow as usize] += 1;
            assert_eq!(p.payload.len(), 64);
            assert_eq!(p.payload, payload_bytes(p.flow, p.seq, 64));
        }
    }

    #[test]
    fn extend_and_matches_agree_with_payload_bytes() {
        // Sizes straddling the 8-byte keystream word, so partial-word
        // tails are covered on all three entry points.
        for size in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let canonical = payload_bytes(9, 1234, size);
            let mut appended = b"prefix".to_vec();
            payload_extend(9, 1234, size, &mut appended);
            assert_eq!(&appended[6..], &canonical[..], "size {size}");
            assert!(payload_matches(9, 1234, size, &canonical));
            assert!(!payload_matches(9, 1235, size.max(1), &payload_bytes(9, 1234, size.max(1))));
            assert!(!payload_matches(9, 1234, size + 1, &canonical), "length must match");
        }
        let mut flipped = payload_bytes(3, 7, 64);
        flipped[63] ^= 1;
        assert!(!payload_matches(3, 7, 64, &flipped), "last byte is checked");
    }

    #[test]
    fn bimodal_sizes_respected() {
        let mut t = PacketTrace::new(PacketTraceConfig {
            num_flows: 1,
            sizes: SizeDistribution::internet_mix(),
            seed: 2,
        });
        let mut small = 0;
        let mut large = 0;
        for _ in 0..1000 {
            match t.next_packet().payload.len() {
                64 => small += 1,
                1500 => large += 1,
                other => panic!("unexpected size {other}"),
            }
        }
        assert!(small > 450 && large > 250, "small={small} large={large}");
    }

    #[test]
    fn uniform_sizes_in_range() {
        let mut t = PacketTrace::new(PacketTraceConfig {
            num_flows: 1,
            sizes: SizeDistribution::Uniform { min: 40, max: 80 },
            seed: 3,
        });
        for _ in 0..200 {
            let n = t.next_packet().payload.len();
            assert!((40..=80).contains(&n));
        }
    }

    #[test]
    fn segments_cover_stream_exactly() {
        let stream: Vec<u8> = (0..=255u8).collect();
        let mut s = OutOfOrderSegments::new(&stream, 30, 4, 7);
        assert_eq!(s.len(), 9); // ceil(256/30)
        let mut rebuilt = vec![0u8; 256];
        let mut count = 0;
        while let Some(seg) = s.next_segment() {
            rebuilt[seg.offset as usize..seg.offset as usize + seg.data.len()]
                .copy_from_slice(&seg.data);
            count += 1;
        }
        assert_eq!(count, 9);
        assert_eq!(rebuilt, stream);
    }

    #[test]
    fn segments_actually_reordered() {
        let stream = vec![0u8; 64 * 16];
        let mut s = OutOfOrderSegments::new(&stream, 64, 8, 11);
        let offsets: Vec<u64> = std::iter::from_fn(|| s.next_segment().map(|x| x.offset)).collect();
        let sorted = {
            let mut v = offsets.clone();
            v.sort_unstable();
            v
        };
        assert_ne!(offsets, sorted, "window shuffle must reorder something");
    }

    #[test]
    fn window_bounds_displacement() {
        let stream = vec![0u8; 10 * 100];
        let mut s = OutOfOrderSegments::new(&stream, 100, 5, 13);
        let mut i = 0usize;
        while let Some(seg) = s.next_segment() {
            let original_index = (seg.offset / 100) as usize;
            assert_eq!(original_index / 5, i / 5, "segments stay inside their window");
            i += 1;
        }
    }
}
