//! Address stream generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An infinite stream of cell addresses.
pub trait AddressGenerator {
    /// Produces the next address.
    fn next_addr(&mut self) -> u64;

    /// Fills `out` with the next `out.len()` addresses of the stream —
    /// identical, element for element, to that many [`next_addr`] calls
    /// (the default implementation *is* that loop, so determinism holds by
    /// construction). Batch consumers (benchmark loops, campaign shards)
    /// use this to amortize the per-call overhead of a boxed or enum
    /// generator over a whole batch.
    ///
    /// [`next_addr`]: AddressGenerator::next_addr
    fn fill_addrs(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_addr();
        }
    }
}

/// Uniformly random addresses over `[0, space)` — the baseline pattern the
/// MTS analysis assumes (the universal hash makes *every* pattern look
/// like this one).
///
/// Backed by a SplitMix64 counter stream rather than a cryptographic RNG:
/// this generator runs *inside* the timed region of throughput benchmarks
/// and feeds the live-serving traffic loop, so producing an address must
/// cost a handful of arithmetic ops, not a ChaCha block. SplitMix64 easily
/// clears the statistical bar for synthetic uniform traffic, and the
/// stream is still a pure function of `seed`.
#[derive(Debug, Clone)]
pub struct UniformAddresses {
    space: u64,
    state: u64,
}

impl UniformAddresses {
    /// Creates a generator over `[0, space)`.
    ///
    /// # Panics
    ///
    /// Panics if `space == 0`.
    pub fn new(space: u64, seed: u64) -> Self {
        assert!(space > 0, "address space must be non-empty");
        UniformAddresses { space, state: seed }
    }
}

impl AddressGenerator for UniformAddresses {
    #[inline]
    fn next_addr(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let z = vpnm_hash::fast::mix64(self.state);
        // Lemire multiply-shift reduction: maps the 64-bit sample onto
        // `[0, space)` with bias below 2^-32 for any realistic space —
        // no modulo, no rejection loop.
        ((u128::from(z) * u128::from(self.space)) >> 64) as u64
    }
}

/// Sequential addresses `start, start+1, …` wrapping at `space`.
#[derive(Debug, Clone)]
pub struct SequentialAddresses {
    next: u64,
    space: u64,
}

impl SequentialAddresses {
    /// Creates a wrap-around sequential stream.
    ///
    /// # Panics
    ///
    /// Panics if `space == 0`.
    pub fn new(start: u64, space: u64) -> Self {
        assert!(space > 0);
        SequentialAddresses { next: start % space, space }
    }
}

impl AddressGenerator for SequentialAddresses {
    fn next_addr(&mut self) -> u64 {
        let a = self.next;
        self.next = (self.next + 1) % self.space;
        a
    }
}

/// Constant-stride addresses `start, start+s, start+2s, …` (mod space) —
/// the classic bank-conflict killer for power-of-two banking (stride `B`
/// puts every access in one bank under low-bit selection).
#[derive(Debug, Clone)]
pub struct StrideAddresses {
    next: u64,
    stride: u64,
    space: u64,
}

impl StrideAddresses {
    /// Creates a strided stream.
    ///
    /// # Panics
    ///
    /// Panics if `space == 0` or `stride == 0`.
    pub fn new(start: u64, stride: u64, space: u64) -> Self {
        assert!(space > 0 && stride > 0);
        StrideAddresses { next: start % space, stride, space }
    }
}

impl AddressGenerator for StrideAddresses {
    fn next_addr(&mut self) -> u64 {
        let a = self.next;
        self.next = (self.next + self.stride) % self.space;
        a
    }
}

/// Zipf-distributed addresses over `[0, space)` with exponent `s` —
/// models skewed flow popularity (a few prefixes take most lookups).
#[derive(Debug, Clone)]
pub struct ZipfAddresses {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfAddresses {
    /// Creates a Zipf(`s`) stream over `space` distinct addresses. The
    /// CDF is precomputed, so `space` should stay modest (≤ ~1e6).
    ///
    /// # Panics
    ///
    /// Panics if `space == 0` or `s < 0`.
    pub fn new(space: u64, s: f64, seed: u64) -> Self {
        assert!(space > 0, "address space must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(space as usize);
        let mut acc = 0.0;
        for rank in 1..=space {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfAddresses { cdf, rng: StdRng::seed_from_u64(seed) }
    }
}

impl AddressGenerator for ZipfAddresses {
    fn next_addr(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Heavy-tailed (approximately Zipf `s = 1`) flow IDs over arbitrarily
/// large spaces in O(1) memory — the million-flow companion to
/// [`ZipfAddresses`], whose precomputed CDF caps it at ~1e6 ranks.
///
/// Samples are log-uniform: `flow = floor(space^(u^skew)) - 1` for
/// `u ~ U[0,1)`, so `P(flow < x) = ln(x)/ln(space)` at `skew = 1` and the
/// rank-frequency curve is `∝ 1/rank` — the classic Internet flow-size
/// distribution (a few elephant flows carry most packets, the mouse tail
/// carries the rest). `skew > 1` concentrates further onto the elephants;
/// `skew < 1` flattens toward uniform. Concretely, at `skew = 1` the top
/// 0.1% of a 2^20-flow space draws ~50% of all packets.
#[derive(Debug, Clone)]
pub struct HeavyTailFlows {
    space: u64,
    ln_space: f64,
    skew: f64,
    rng: StdRng,
}

impl HeavyTailFlows {
    /// Creates a heavy-tailed stream over `[0, space)`.
    ///
    /// # Panics
    ///
    /// Panics if `space < 2` (the log-uniform map needs a non-degenerate
    /// range) or `skew` is not a positive finite number.
    pub fn new(space: u64, skew: f64, seed: u64) -> Self {
        assert!(space >= 2, "flow space must have at least 2 flows");
        assert!(skew > 0.0 && skew.is_finite(), "skew must be positive and finite");
        HeavyTailFlows {
            space,
            ln_space: (space as f64).ln(),
            skew,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The flow-space size this stream draws from.
    pub fn space(&self) -> u64 {
        self.space
    }
}

impl AddressGenerator for HeavyTailFlows {
    fn next_addr(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        // IEEE 754 guarantees pow(x, 1.0) == x exactly, so the default
        // Zipf(1) mix can skip the expensive powf without perturbing a
        // single draw (pinned by `skew_one_fast_path_is_bit_identical`).
        let shaped = if self.skew == 1.0 { u } else { u.powf(self.skew) };
        let flow = (shaped * self.ln_space).exp() as u64;
        // exp(·) lands in [1, space); the clamp guards the u → 1 edge.
        flow.saturating_sub(1).min(self.space - 1)
    }
}

/// A two-population hotspot: with probability `hot_fraction` draw from a
/// small hot set, otherwise uniform over the full space.
#[derive(Debug, Clone)]
pub struct HotspotAddresses {
    hot_set: u64,
    space: u64,
    hot_fraction: f64,
    rng: StdRng,
}

impl HotspotAddresses {
    /// Creates a hotspot stream.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < hot_set <= space` and
    /// `hot_fraction ∈ [0, 1]`.
    pub fn new(hot_set: u64, space: u64, hot_fraction: f64, seed: u64) -> Self {
        assert!(hot_set > 0 && hot_set <= space, "hot set must fit the space");
        assert!((0.0..=1.0).contains(&hot_fraction));
        HotspotAddresses { hot_set, space, hot_fraction, rng: StdRng::seed_from_u64(seed) }
    }
}

impl AddressGenerator for HotspotAddresses {
    fn next_addr(&mut self) -> u64 {
        if self.rng.gen_bool(self.hot_fraction) {
            self.rng.gen_range(0..self.hot_set)
        } else {
            self.rng.gen_range(0..self.space)
        }
    }
}

/// Cyclic repetition of a fixed address set: `[A]` gives the paper's
/// "A,A,A,A,…", `[A, B]` gives "A,B,A,B,…" (Section 3.4) — the patterns
/// the merging queue must absorb with bounded rows.
#[derive(Debug, Clone)]
pub struct RedundantPattern {
    pattern: Vec<u64>,
    pos: usize,
}

impl RedundantPattern {
    /// Creates a cyclic pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty.
    pub fn new(pattern: Vec<u64>) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        RedundantPattern { pattern, pos: 0 }
    }
}

impl AddressGenerator for RedundantPattern {
    fn next_addr(&mut self) -> u64 {
        let a = self.pattern[self.pos];
        self.pos = (self.pos + 1) % self.pattern.len();
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take<G: AddressGenerator>(g: &mut G, n: usize) -> Vec<u64> {
        (0..n).map(|_| g.next_addr()).collect()
    }

    #[test]
    fn uniform_stays_in_range_and_varies() {
        let mut g = UniformAddresses::new(100, 1);
        let v = take(&mut g, 1000);
        assert!(v.iter().all(|&a| a < 100));
        let distinct: std::collections::HashSet<_> = v.iter().collect();
        assert!(distinct.len() > 50);
    }

    #[test]
    fn uniform_deterministic() {
        let a = take(&mut UniformAddresses::new(1000, 9), 50);
        let b = take(&mut UniformAddresses::new(1000, 9), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_wraps() {
        let mut g = SequentialAddresses::new(2, 4);
        assert_eq!(take(&mut g, 6), vec![2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn stride_pattern() {
        let mut g = StrideAddresses::new(0, 32, 128);
        assert_eq!(take(&mut g, 5), vec![0, 32, 64, 96, 0]);
    }

    #[test]
    fn zipf_is_skewed() {
        let mut g = ZipfAddresses::new(1000, 1.0, 3);
        let v = take(&mut g, 10_000);
        let top = v.iter().filter(|&&a| a == 0).count();
        let mid = v.iter().filter(|&&a| a == 500).count();
        assert!(top > 10 * (mid + 1), "rank 0 ({top}) must dominate rank 500 ({mid})");
        assert!(v.iter().all(|&a| a < 1000));
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let mut g = ZipfAddresses::new(10, 0.0, 4);
        let v = take(&mut g, 10_000);
        for target in 0..10u64 {
            let c = v.iter().filter(|&&a| a == target).count();
            assert!((700..1300).contains(&c), "addr {target} count {c}");
        }
    }

    #[test]
    fn heavy_tail_is_deterministic_and_in_range() {
        let space = 1u64 << 40; // far beyond what a CDF table could hold
        let a = take(&mut HeavyTailFlows::new(space, 1.0, 11), 200);
        let b = take(&mut HeavyTailFlows::new(space, 1.0, 11), 200);
        assert_eq!(a, b);
        assert!(a.iter().all(|&f| f < space));
        assert_eq!(HeavyTailFlows::new(space, 1.0, 11).space(), space);
    }

    #[test]
    fn skew_one_fast_path_is_bit_identical() {
        // The skew == 1.0 branch skips powf; IEEE 754 pow(x, 1.0) == x
        // exactly, so a generator forced through powf (skew nudged by
        // one ulp would change draws, so compare against the documented
        // identity directly) must agree bit for bit.
        let space = 1u64 << 30;
        let fast = take(&mut HeavyTailFlows::new(space, 1.0, 21), 10_000);
        let reference: Vec<u64> = {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(21);
            let ln_space = (space as f64).ln();
            (0..10_000)
                .map(|_| {
                    let u: f64 = rng.gen();
                    let flow = (u.powf(1.0) * ln_space).exp() as u64;
                    flow.saturating_sub(1).min(space - 1)
                })
                .collect()
        };
        assert_eq!(fast, reference);
    }

    #[test]
    fn heavy_tail_elephants_dominate() {
        // Log-uniform over 2^20 flows: the top 0.1% of flow IDs should
        // carry about ln(1049)/ln(2^20) ~ 50% of packets.
        let space = 1u64 << 20;
        let mut g = HeavyTailFlows::new(space, 1.0, 7);
        let v = take(&mut g, 50_000);
        let top = v.iter().filter(|&&f| f < space / 1000).count();
        let share = top as f64 / v.len() as f64;
        assert!((0.40..=0.60).contains(&share), "top-0.1% share was {share}");
    }

    #[test]
    fn heavy_tail_skew_knob_concentrates() {
        let space = 1u64 << 20;
        let head = |skew: f64| {
            let mut g = HeavyTailFlows::new(space, skew, 3);
            take(&mut g, 20_000).iter().filter(|&&f| f < 16).count()
        };
        assert!(head(2.0) > 2 * head(1.0), "skew=2 must beat skew=1 on the head");
    }

    #[test]
    fn hotspot_prefers_hot_set() {
        let mut g = HotspotAddresses::new(10, 10_000, 0.9, 5);
        let v = take(&mut g, 10_000);
        let hot = v.iter().filter(|&&a| a < 10).count();
        assert!(hot > 8500, "hot fraction was {hot}/10000");
    }

    #[test]
    fn redundant_cycles() {
        let mut g = RedundantPattern::new(vec![7]);
        assert_eq!(take(&mut g, 3), vec![7, 7, 7]);
        let mut g = RedundantPattern::new(vec![1, 2]);
        assert_eq!(take(&mut g, 5), vec![1, 2, 1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_rejected() {
        let _ = RedundantPattern::new(vec![]);
    }

    #[test]
    fn fill_addrs_matches_next_addr_sequence() {
        let mut a = UniformAddresses::new(1 << 20, 42);
        let mut b = a.clone();
        let expect = take(&mut a, 257);
        let mut got = vec![0u64; 257];
        b.fill_addrs(&mut got);
        assert_eq!(got, expect);
        // and across two consecutive batches
        let expect2 = take(&mut a, 31);
        let mut got2 = vec![0u64; 31];
        b.fill_addrs(&mut got2);
        assert_eq!(got2, expect2);
    }
}
