//! On/off burst shaping.
//!
//! Network traffic is bursty; a controller must absorb a full-rate burst
//! and recover during the idle period (the bus scaling ratio `R > 1`
//! exists exactly so that "idle slots in the schedule do not accumulate" —
//! paper Section 4). [`BurstShaper`] gates any per-cycle source into
//! alternating on/off windows.

/// Alternating on/off windows measured in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstShaper {
    on_cycles: u64,
    off_cycles: u64,
    pos: u64,
}

impl BurstShaper {
    /// Creates a shaper with the given window lengths.
    ///
    /// # Panics
    ///
    /// Panics if `on_cycles == 0` (the stream would never emit).
    pub fn new(on_cycles: u64, off_cycles: u64) -> Self {
        assert!(on_cycles > 0, "on-window must be non-empty");
        BurstShaper { on_cycles, off_cycles, pos: 0 }
    }

    /// Advances one cycle; returns whether this cycle is inside an
    /// on-window (i.e. the source should emit a request).
    pub fn tick(&mut self) -> bool {
        let period = self.on_cycles + self.off_cycles;
        let on = self.pos < self.on_cycles;
        self.pos = (self.pos + 1) % period;
        on
    }

    /// Long-run fraction of on-cycles.
    pub fn duty_cycle(&self) -> f64 {
        self.on_cycles as f64 / (self.on_cycles + self.off_cycles) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_alternates() {
        let mut b = BurstShaper::new(2, 3);
        let v: Vec<bool> = (0..10).map(|_| b.tick()).collect();
        assert_eq!(v, vec![true, true, false, false, false, true, true, false, false, false]);
    }

    #[test]
    fn always_on_with_zero_off() {
        let mut b = BurstShaper::new(3, 0);
        assert!((0..10).all(|_| b.tick()));
        assert_eq!(b.duty_cycle(), 1.0);
    }

    #[test]
    fn duty_cycle_math() {
        assert!((BurstShaper::new(1, 3).duty_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_on_rejected() {
        let _ = BurstShaper::new(0, 1);
    }
}
