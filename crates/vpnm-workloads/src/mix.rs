//! Turning address streams into read/write request streams.

use crate::generators::AddressGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the next request should be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// A read of the address.
    Read {
        /// Cell address.
        addr: u64,
    },
    /// A write of deterministic (address-derived) payload.
    Write {
        /// Cell address.
        addr: u64,
        /// Payload bytes.
        data: Vec<u8>,
    },
}

impl RequestKind {
    /// The address of this request.
    pub fn addr(&self) -> u64 {
        match self {
            RequestKind::Read { addr } | RequestKind::Write { addr, .. } => *addr,
        }
    }
}

/// Read/write mixing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestMix {
    /// Probability that a request is a read (`1.0` = read-only).
    pub read_fraction: f64,
    /// Payload bytes attached to writes.
    pub write_bytes: usize,
}

impl RequestMix {
    /// A read-only mix.
    pub fn read_only() -> Self {
        RequestMix { read_fraction: 1.0, write_bytes: 0 }
    }

    /// The packet-buffer mix: alternating write and read (one cell in, one
    /// cell out per slot), expressed probabilistically.
    pub fn half_and_half(write_bytes: usize) -> Self {
        RequestMix { read_fraction: 0.5, write_bytes }
    }
}

/// An infinite request stream: an address generator plus a mixing policy.
///
/// Write payloads are derived deterministically from the address so any
/// consumer can verify read-backs without tracking state.
#[derive(Debug, Clone)]
pub struct RequestStream<G> {
    gen: G,
    mix: RequestMix,
    rng: StdRng,
}

impl<G: AddressGenerator> RequestStream<G> {
    /// Creates a stream.
    ///
    /// # Panics
    ///
    /// Panics unless `read_fraction ∈ [0, 1]`.
    pub fn new(gen: G, mix: RequestMix, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&mix.read_fraction));
        RequestStream { gen, mix, rng: StdRng::seed_from_u64(seed) }
    }

    /// Produces the next request.
    pub fn next_request(&mut self) -> RequestKind {
        let addr = self.gen.next_addr();
        if self.rng.gen_bool(self.mix.read_fraction) {
            RequestKind::Read { addr }
        } else {
            RequestKind::Write { addr, data: payload_for(addr, self.mix.write_bytes) }
        }
    }

    /// Clears `out` and refills it with the next `n` requests — identical,
    /// element for element, to `n` [`RequestStream::next_request`] calls.
    /// The batch front door for benchmark loops and campaign shards; the
    /// buffer is reused across calls so steady-state refills allocate
    /// nothing.
    pub fn fill_batch(&mut self, out: &mut Vec<RequestKind>, n: usize) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_request());
        }
    }
}

/// The canonical deterministic payload for a cell address: a SplitMix64
/// keystream seeded by the address. Readers re-derive it to check data
/// integrity end to end.
pub fn payload_for(addr: u64, bytes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes);
    let mut state = addr;
    while out.len() < bytes {
        state = vpnm_sim::rng::splitmix64(state);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::SequentialAddresses;

    #[test]
    fn read_only_mix_never_writes() {
        let mut s =
            RequestStream::new(SequentialAddresses::new(0, 100), RequestMix::read_only(), 1);
        for _ in 0..100 {
            assert!(matches!(s.next_request(), RequestKind::Read { .. }));
        }
    }

    #[test]
    fn half_mix_roughly_balanced() {
        let mut s =
            RequestStream::new(SequentialAddresses::new(0, 1000), RequestMix::half_and_half(8), 2);
        let reads =
            (0..1000).filter(|_| matches!(s.next_request(), RequestKind::Read { .. })).count();
        assert!((350..650).contains(&reads), "reads {reads}");
    }

    #[test]
    fn payload_deterministic_and_sized() {
        assert_eq!(payload_for(5, 8), payload_for(5, 8));
        assert_ne!(payload_for(5, 8), payload_for(6, 8));
        assert_eq!(payload_for(9, 3).len(), 3);
        assert_eq!(payload_for(9, 0).len(), 0);
    }

    #[test]
    fn write_payload_matches_canonical() {
        let mut s = RequestStream::new(
            SequentialAddresses::new(7, 100),
            RequestMix { read_fraction: 0.0, write_bytes: 16 },
            3,
        );
        match s.next_request() {
            RequestKind::Write { addr, data } => {
                assert_eq!(addr, 7);
                assert_eq!(data, payload_for(7, 16));
            }
            other => panic!("expected write, got {other:?}"),
        }
    }

    #[test]
    fn fill_batch_matches_next_request_sequence() {
        let mk = || {
            RequestStream::new(SequentialAddresses::new(0, 1000), RequestMix::half_and_half(8), 17)
        };
        let mut a = mk();
        let expect: Vec<RequestKind> = (0..300).map(|_| a.next_request()).collect();
        let mut b = mk();
        let mut buf = Vec::new();
        b.fill_batch(&mut buf, 200);
        assert_eq!(buf, expect[..200]);
        b.fill_batch(&mut buf, 100);
        assert_eq!(buf, expect[200..]);
    }

    #[test]
    fn addr_accessor() {
        assert_eq!(RequestKind::Read { addr: 3 }.addr(), 3);
        assert_eq!(RequestKind::Write { addr: 4, data: vec![] }.addr(), 4);
    }
}
