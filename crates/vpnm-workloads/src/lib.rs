//! Workload and traffic generation for the VPNM experiments.
//!
//! The paper's claims are about behaviour *under any access pattern,
//! including adversarial ones*. This crate provides the pattern families
//! the experiments exercise:
//!
//! * [`generators`] — address streams: uniform, strided, Zipf-skewed,
//!   hotspot, and the paper's redundant patterns ("A,A,A,…" and
//!   "A,B,A,B,…", Section 3.4).
//! * [`mix`] — turning address streams into read/write request streams.
//! * [`burst`] — on/off burst shaping of any request stream.
//! * [`adversary`] — attackers: a stride attacker (defeats conventional
//!   low-bit banking), an omniscient attacker that knows the hash key (the
//!   upper bound randomization must be measured against), and a replay
//!   attacker probing for stall timing (Section 4's threat model).
//! * [`packets`] — synthetic packet traces (flows, sizes, arrival
//!   processes) and out-of-order TCP segment streams for the packet
//!   buffering and reassembly applications.
//!
//! All generators are deterministic given a seed (via
//! [`vpnm_sim::SeedSequence`]-derived seeds).

#![warn(missing_docs)]

pub mod adversary;
pub mod burst;
pub mod generators;
pub mod mix;
pub mod packets;
pub mod tenants;

pub use adversary::{OmniscientAdversary, ReplayAdversary, StrideAdversary};
pub use generators::{
    AddressGenerator, HeavyTailFlows, HotspotAddresses, RedundantPattern, SequentialAddresses,
    StrideAddresses, UniformAddresses, ZipfAddresses,
};
pub use mix::{RequestKind, RequestMix, RequestStream};
pub use packets::{OutOfOrderSegments, PacketTrace, PacketTraceConfig, Segment, SizeDistribution};
pub use tenants::{MultiTenantMix, Tagged, TenantFlowGen};
