//! Multi-tenant traffic: several independent flow populations sharing
//! one fabric, with an optional adversarial tenant in the mix.
//!
//! The QoS experiments (PR 10's isolation study) need exactly the
//! scenario the paper's Section 4 worries about, lifted to tenancy: `N`
//! well-behaved tenants each offering ordinary heavy-tailed flow
//! traffic, plus one adversary spending its whole share on a bank-stride
//! sweep ([`StrideAdversary`]). [`MultiTenantMix`] produces that blended
//! stream as `(tenant, flow)` pairs — deterministically scheduled from
//! the seed, so a regulated and an unregulated run see byte-identical
//! offered traffic.
//!
//! [`TenantFlowGen`] is the tenant-aware analogue of
//! [`AddressGenerator`]; [`Tagged`] lifts any legacy single-tenant
//! generator into it.

use crate::adversary::StrideAdversary;
use crate::generators::{AddressGenerator, HeavyTailFlows};

/// An infinite stream of `(tenant, flow)` pairs — [`AddressGenerator`]
/// with attribution.
pub trait TenantFlowGen {
    /// Produces the next tagged flow.
    fn next_tagged(&mut self) -> (u16, u64);
}

/// Lifts a single-tenant [`AddressGenerator`] into a [`TenantFlowGen`]
/// that tags every flow with one fixed tenant.
#[derive(Debug, Clone)]
pub struct Tagged<G> {
    tenant: u16,
    inner: G,
}

impl<G: AddressGenerator> Tagged<G> {
    /// Tags every address `inner` produces with `tenant`.
    pub fn new(tenant: u16, inner: G) -> Self {
        Tagged { tenant, inner }
    }
}

impl<G: AddressGenerator> TenantFlowGen for Tagged<G> {
    #[inline]
    fn next_tagged(&mut self) -> (u16, u64) {
        (self.tenant, self.inner.next_addr())
    }
}

/// `N` well-behaved heavy-tailed tenants plus (optionally) one
/// adversarial tenant running a bank-stride sweep, interleaved by a
/// deterministic weighted schedule.
///
/// Tenant IDs are dense: well-behaved tenants take `0..N`, and when
/// `adversary_pct > 0` the adversary is the *last* ID (`tenants - 1`),
/// claiming `adversary_pct` percent of the offered packets; the
/// remainder is spread evenly (pseudo-randomly, seed-deterministic)
/// across the well-behaved tenants.
#[derive(Debug, Clone)]
pub struct MultiTenantMix {
    wellbehaved: Vec<HeavyTailFlows>,
    adversary: Option<StrideAdversary>,
    adversary_pct: u32,
    state: u64,
    space: u64,
}

impl MultiTenantMix {
    /// Creates a mix of `tenants` tenants over a `space`-flow space.
    ///
    /// `banks` is the bank count the adversary's stride assumes (the
    /// fabric-global total, matching what a per-bank regulator defends);
    /// `adversary_pct` is the percentage of packets the adversarial
    /// tenant offers (0 disables it — all tenants well-behaved).
    ///
    /// # Panics
    ///
    /// Panics if `tenants == 0`, `space < 2`, `space < banks`,
    /// `banks == 0`, `adversary_pct > 100`, or an adversary is requested
    /// with fewer than 2 tenants (it would have no victim to starve).
    pub fn new(tenants: u16, space: u64, banks: u64, adversary_pct: u32, seed: u64) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        assert!(adversary_pct <= 100, "adversary share is a percentage");
        assert!(
            adversary_pct == 0 || tenants >= 2,
            "an adversarial tenant needs a well-behaved victim"
        );
        let adversary = (adversary_pct > 0).then(|| StrideAdversary::new(banks, space));
        let n_well = if adversary.is_some() { tenants - 1 } else { tenants };
        let wellbehaved = (0..n_well)
            .map(|t| {
                HeavyTailFlows::new(
                    space,
                    1.0,
                    seed ^ u64::from(t).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            })
            .collect();
        MultiTenantMix { wellbehaved, adversary, adversary_pct, state: seed.rotate_left(31), space }
    }

    /// The flow-space size every tenant draws from.
    pub fn space(&self) -> u64 {
        self.space
    }

    /// Total tenant count (including the adversary, when enabled).
    pub fn tenants(&self) -> u16 {
        (self.wellbehaved.len() + usize::from(self.adversary.is_some())) as u16
    }

    /// The adversarial tenant's ID, when one is enabled.
    pub fn adversary_tenant(&self) -> Option<u16> {
        self.adversary.as_ref().map(|_| self.tenants() - 1)
    }
}

impl TenantFlowGen for MultiTenantMix {
    fn next_tagged(&mut self) -> (u16, u64) {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let z = vpnm_hash::fast::mix64(self.state);
        let adv_id = self.tenants() - 1;
        if let Some(adv) = &mut self.adversary {
            if z % 100 < u64::from(self.adversary_pct) {
                return (adv_id, adv.next_addr());
            }
        }
        let t = ((z >> 32) % self.wellbehaved.len() as u64) as usize;
        (t as u16, self.wellbehaved[t].next_addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_wraps_legacy_generators() {
        let mut gen = Tagged::new(3, crate::generators::SequentialAddresses::new(0, 8));
        assert_eq!(gen.next_tagged(), (3, 0));
        assert_eq!(gen.next_tagged(), (3, 1));
    }

    #[test]
    fn mix_is_seed_deterministic() {
        let mut a = MultiTenantMix::new(4, 1 << 16, 32, 25, 77);
        let mut b = MultiTenantMix::new(4, 1 << 16, 32, 25, 77);
        for _ in 0..1000 {
            assert_eq!(a.next_tagged(), b.next_tagged());
        }
    }

    #[test]
    fn adversary_takes_roughly_its_share() {
        let mut mix = MultiTenantMix::new(4, 1 << 16, 32, 25, 9);
        assert_eq!(mix.adversary_tenant(), Some(3));
        let mut counts = [0u64; 4];
        for _ in 0..10_000 {
            let (t, flow) = mix.next_tagged();
            assert!(flow < 1 << 16);
            counts[usize::from(t)] += 1;
        }
        let adv = counts[3];
        assert!((2200..=2800).contains(&adv), "adversary drew {adv} of 10000");
        for &c in &counts[..3] {
            assert!(c > 1500, "well-behaved share too small: {counts:?}");
        }
    }

    #[test]
    fn adversary_tenant_strides_by_the_bank_count() {
        let mut mix = MultiTenantMix::new(2, 1 << 12, 64, 100, 5);
        let (t0, f0) = mix.next_tagged();
        let (t1, f1) = mix.next_tagged();
        assert_eq!((t0, t1), (1, 1), "100% share means only the adversary fires");
        assert_eq!(f1 - f0, 64, "stride equals the assumed bank count");
    }

    #[test]
    fn zero_share_disables_the_adversary() {
        let mut mix = MultiTenantMix::new(3, 1 << 10, 8, 0, 1);
        assert_eq!(mix.adversary_tenant(), None);
        assert_eq!(mix.tenants(), 3);
        for _ in 0..200 {
            assert!(mix.next_tagged().0 < 3);
        }
    }
}
