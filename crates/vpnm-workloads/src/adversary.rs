//! Adversarial address streams (paper Sections 3.2, 4).
//!
//! The paper's threat model: an attacker crafts traffic to concentrate
//! accesses on one bank and overflow its queues. Against conventional
//! low-bit bank selection, a constant stride of `B` does this trivially
//! ([`StrideAdversary`]). Against VPNM the mapping is a keyed universal
//! hash, the attacker cannot see conflicts (latency is normalized), and
//! "it is provably hard for even a perfect adversary to create stalls …
//! with greater effectiveness than random chance". [`OmniscientAdversary`]
//! models the hypothetical upper bound where the key *has leaked* — the
//! one case that still defeats the scheme, which is why the paper
//! prescribes re-keying after repeated stalls. [`ReplayAdversary`] models
//! the realistic attacker who replays suspected-bad sequences with small
//! perturbations, hunting for stall timing feedback.

use crate::generators::AddressGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strides by the bank count — concentrates all accesses on one bank
/// under low-bit bank selection, and on a random spread under a universal
/// hash.
#[derive(Debug, Clone)]
pub struct StrideAdversary {
    next: u64,
    banks: u64,
    space: u64,
}

impl StrideAdversary {
    /// Creates an attacker assuming `banks` banks over `space` addresses.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or `space < banks`.
    pub fn new(banks: u64, space: u64) -> Self {
        assert!(banks > 0 && space >= banks);
        StrideAdversary { next: 0, banks, space }
    }
}

impl AddressGenerator for StrideAdversary {
    fn next_addr(&mut self) -> u64 {
        let a = self.next;
        self.next = (self.next + self.banks) % self.space;
        a
    }
}

/// An attacker with full knowledge of the bank mapping: given an oracle
/// `addr → bank`, it precomputes a pool of **distinct** addresses that all
/// map to one target bank and cycles through them. Distinctness defeats
/// the merging queue; same-bank targeting defeats randomization. This is
/// the strongest possible adversary — useful to verify that (a) with a
/// leaked key VPNM does stall, and (b) the stall rate after re-keying
/// reverts to random chance.
#[derive(Debug, Clone)]
pub struct OmniscientAdversary {
    pool: Vec<u64>,
    pos: usize,
}

impl OmniscientAdversary {
    /// Scans `[0, space)` for up to `pool_size` addresses mapping to
    /// `target_bank` under `bank_of`.
    ///
    /// # Panics
    ///
    /// Panics if no addresses map to the target bank (an impossible bank
    /// index, or a degenerate mapping).
    pub fn new(
        space: u64,
        target_bank: u32,
        pool_size: usize,
        mut bank_of: impl FnMut(u64) -> u32,
    ) -> Self {
        let mut pool = Vec::with_capacity(pool_size);
        for addr in 0..space {
            if bank_of(addr) == target_bank {
                pool.push(addr);
                if pool.len() == pool_size {
                    break;
                }
            }
        }
        assert!(!pool.is_empty(), "no addresses map to bank {target_bank}");
        OmniscientAdversary { pool, pos: 0 }
    }

    /// The number of same-bank addresses found.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }
}

impl AddressGenerator for OmniscientAdversary {
    fn next_addr(&mut self) -> u64 {
        let a = self.pool[self.pos];
        self.pos = (self.pos + 1) % self.pool.len();
        a
    }
}

/// A replay attacker: emits a random base sequence, then repeatedly
/// replays it with a few mutated positions — the "remember the exact
/// sequence of accesses that caused the stall and replay … with minor
/// changes" strategy of paper Section 4.
#[derive(Debug, Clone)]
pub struct ReplayAdversary {
    sequence: Vec<u64>,
    pos: usize,
    mutations_per_round: usize,
    space: u64,
    rng: StdRng,
}

impl ReplayAdversary {
    /// Creates an attacker with a base sequence of `len` addresses over
    /// `[0, space)`, mutating `mutations_per_round` positions between
    /// replays.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `space == 0`.
    pub fn new(len: usize, space: u64, mutations_per_round: usize, seed: u64) -> Self {
        assert!(len > 0 && space > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let sequence = (0..len).map(|_| rng.gen_range(0..space)).collect();
        ReplayAdversary { sequence, pos: 0, mutations_per_round, space, rng }
    }

    /// The current replay sequence (for asserting stability in tests).
    pub fn sequence(&self) -> &[u64] {
        &self.sequence
    }
}

impl AddressGenerator for ReplayAdversary {
    fn next_addr(&mut self) -> u64 {
        let a = self.sequence[self.pos];
        self.pos += 1;
        if self.pos == self.sequence.len() {
            self.pos = 0;
            for _ in 0..self.mutations_per_round {
                let i = self.rng.gen_range(0..self.sequence.len());
                self.sequence[i] = self.rng.gen_range(0..self.space);
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpnm_hash::{BankHasher, H3Hash, LowBitsHash};

    #[test]
    fn stride_adversary_pins_low_bit_banking() {
        let mut adv = StrideAdversary::new(8, 1 << 16);
        let h = LowBitsHash::new(3);
        for _ in 0..100 {
            assert_eq!(h.bank_of(adv.next_addr()), 0);
        }
    }

    #[test]
    fn stride_adversary_spreads_under_h3() {
        let mut adv = StrideAdversary::new(8, 1 << 16);
        let h = H3Hash::from_seed(16, 3, 77);
        let mut banks = std::collections::HashSet::new();
        for _ in 0..64 {
            banks.insert(h.bank_of(adv.next_addr()));
        }
        assert!(banks.len() >= 4, "universal hash must defeat the stride");
    }

    #[test]
    fn omniscient_adversary_hits_target_bank_always() {
        let h = H3Hash::from_seed(16, 3, 5);
        let mut adv = OmniscientAdversary::new(1 << 16, 2, 64, |a| h.bank_of(a));
        assert_eq!(adv.pool_size(), 64);
        for _ in 0..200 {
            assert_eq!(h.bank_of(adv.next_addr()), 2);
        }
    }

    #[test]
    fn omniscient_pool_addresses_are_distinct() {
        let h = H3Hash::from_seed(16, 3, 6);
        let mut adv = OmniscientAdversary::new(1 << 16, 1, 32, |a| h.bank_of(a));
        let addrs: std::collections::HashSet<u64> = (0..32).map(|_| adv.next_addr()).collect();
        assert_eq!(addrs.len(), 32, "merging queue must not be able to absorb these");
    }

    #[test]
    fn replay_adversary_mutates_between_rounds() {
        let mut adv = ReplayAdversary::new(16, 1000, 2, 9);
        let first: Vec<u64> = (0..16).map(|_| adv.next_addr()).collect();
        let second: Vec<u64> = (0..16).map(|_| adv.next_addr()).collect();
        let diffs = first.iter().zip(&second).filter(|(a, b)| a != b).count();
        assert!((1..=2).contains(&diffs), "exactly the mutated positions differ: {diffs}");
    }

    #[test]
    #[should_panic(expected = "no addresses map")]
    fn omniscient_rejects_impossible_bank() {
        let _ = OmniscientAdversary::new(16, 9, 4, |_| 0);
    }
}
