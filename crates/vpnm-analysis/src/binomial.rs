//! Log-domain combinatorics.
//!
//! The delay-storage-buffer analysis needs `C(D−1, K−1)·(1/B)^(K−1)` for
//! `D` up to a few thousand — far beyond what `u64`/`f64` factorials can
//! hold directly, so everything is computed as natural logarithms.

/// Natural log of `n!`, by direct summation (exact to f64 rounding; `n`
/// stays small enough in this workspace that a Stirling approximation is
/// unnecessary).
pub fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (an impossible choice has
/// probability zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    // sum of ln((n-k+i)/i) is numerically stabler than three factorials
    (1..=k).map(|i| (((n - k + i) as f64) / (i as f64)).ln()).sum()
}

/// `C(n, k)` as an `f64` (may overflow to infinity for huge inputs; use
/// [`ln_choose`] in probability math).
pub fn choose(n: u64, k: u64) -> f64 {
    ln_choose(n, k).exp()
}

/// A memoized `ln_factorial` table for hot loops (design-space sweeps call
/// the DSB formula hundreds of thousands of times).
#[derive(Debug, Clone, Default)]
pub struct LnFactorialTable {
    table: Vec<f64>,
}

impl LnFactorialTable {
    /// Creates an empty table; entries are filled on demand.
    pub fn new() -> Self {
        LnFactorialTable { table: vec![0.0, 0.0] }
    }

    /// `ln(n!)`, extending the memo table as needed.
    pub fn ln_factorial(&mut self, n: u64) -> f64 {
        let n = n as usize;
        while self.table.len() <= n {
            let i = self.table.len();
            let prev = self.table[i - 1];
            self.table.push(prev + (i as f64).ln());
        }
        self.table[n]
    }

    /// `ln C(n, k)` using the memo table.
    pub fn ln_choose(&mut self, n: u64, k: u64) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.ln_factorial(n) - self.ln_factorial(k) - self.ln_factorial(n - k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_factorials_exact() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3_628_800f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn choose_matches_pascal() {
        assert!((choose(5, 2) - 10.0).abs() < 1e-9);
        assert!((choose(10, 5) - 252.0).abs() < 1e-6);
        assert!((choose(52, 5) - 2_598_960.0).abs() < 1.0);
        assert_eq!(choose(4, 9), 0.0);
        assert!((choose(7, 0) - 1.0).abs() < 1e-12);
        assert!((choose(7, 7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        for n in [10u64, 100, 999] {
            for k in [1u64, 3, 7] {
                assert!((ln_choose(n, k) - ln_choose(n, n - k)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn large_values_stay_finite_in_log_domain() {
        let v = ln_choose(2000, 128);
        assert!(v.is_finite());
        assert!(v > 0.0);
    }

    #[test]
    fn table_matches_direct() {
        let mut t = LnFactorialTable::new();
        for n in [0u64, 1, 2, 17, 100, 50] {
            assert!((t.ln_factorial(n) - ln_factorial(n)).abs() < 1e-9, "n={n}");
        }
        for (n, k) in [(10u64, 3u64), (500, 32), (2000, 128)] {
            assert!((t.ln_choose(n, k) - ln_choose(n, k)).abs() < 1e-7);
        }
        assert_eq!(t.ln_choose(3, 9), f64::NEG_INFINITY);
    }
}
