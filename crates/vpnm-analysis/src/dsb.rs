//! Delay storage buffer stall analysis (paper Section 5.1).
//!
//! A storage row is held for `D` cycles per unique read, so the buffer
//! overflows when one bank receives `K` or more requests within a window
//! of `D` cycles. With the universal hash, bank assignments are a uniform
//! random sequence; the probability that a given request is joined by at
//! least `K−1` same-bank requests among the next `D−1` is bounded by
//! `C(D−1, K−1)·(1/B)^(K−1)`, giving (at 50% stall probability):
//!
//! ```text
//! MTS = log(1/2) / log(1 − C(D−1, K−1)·(1/B)^(K−1)) + D
//! ```

use crate::binomial::ln_choose;
use crate::MTS_CAP;

/// The normalized delay the **paper's analysis** uses: `D = Q·L` (Figure 1
/// defines `Q = D/L`; Section 4.3 says `D` is "determined using the access
/// latency (L) and the bank request queue size (Q)"). The executable
/// controller in `vpnm-core` derives a slightly more conservative `D` that
/// also accounts for bus-grant alignment; use this one when reproducing
/// the paper's Figures 4, 6 and 7.
pub fn paper_delay(q: u64, l: u64) -> u64 {
    q * l
}

/// The normalized delay in **interface cycles** when the memory side runs
/// `R`× faster: `D = ceil(Q·L/R)`. Queued bank work drains `R` times
/// faster relative to the interface, so the storage-row hold time — and
/// with it the delay-storage stall window — shrinks accordingly. The
/// design-space evaluation (Figure 7 / Table 2) uses this form; it is
/// what makes the published Table 2 MTS values differ between `R = 1.3`
/// and `R = 1.4`.
pub fn paper_delay_with_ratio(q: u64, l: u64, r: f64) -> u64 {
    assert!(r.is_finite() && r >= 1.0, "ratio must be >= 1.0");
    ((q * l) as f64 / r).ceil() as u64
}

/// Mean time to stall (in accesses ≈ interface cycles) of the delay
/// storage buffer with `b` banks, `k` rows, and normalized delay `d`.
///
/// Values are capped at [`MTS_CAP`] (10^16), matching the paper's plots.
/// Returns ~`d` when the per-window stall probability approaches 1.
///
/// ```
/// use vpnm_analysis::dsb::dsb_mts;
/// // More rows → exponentially better MTS (paper Figure 4).
/// let d = 160;
/// assert!(dsb_mts(32, 48, d) > 100.0 * dsb_mts(32, 32, d));
/// ```
pub fn dsb_mts(b: u32, k: u64, d: u64) -> f64 {
    assert!(b >= 2, "need at least two banks");
    assert!(k >= 1, "need at least one storage row");
    assert!(d >= 1, "delay must be positive");
    if k > d {
        // The window cannot even contain K requests: no overflow possible.
        return MTS_CAP;
    }
    let ln_p = ln_choose(d - 1, k - 1) - (k - 1) as f64 * f64::from(b).ln();
    let mts = if ln_p >= 0.0 {
        // p >= 1 after the union bound: stall immediately after one window.
        d as f64
    } else {
        let p = ln_p.exp();
        // MTS = ln(1/2)/ln(1-p) + D; for small p, ln(1-p) ≈ -p.
        let denom = if p < 1e-9 { -p } else { (1.0 - p).ln() };
        (0.5f64).ln() / denom + d as f64
    };
    mts.min(MTS_CAP)
}

/// The per-window stall probability `C(D−1, K−1)·(1/B)^(K−1)` itself
/// (clamped to 1), exposed for validation against simulation.
pub fn window_stall_probability(b: u32, k: u64, d: u64) -> f64 {
    assert!(b >= 2 && k >= 1 && d >= 1);
    if k > d {
        return 0.0;
    }
    let ln_p = ln_choose(d - 1, k - 1) - (k - 1) as f64 * f64::from(b).ln();
    ln_p.exp().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure4_b32_k32_order_of_magnitude() {
        // Paper: "for B = 32 … we can get a MTS of 10^12 for K = 32"
        // (R = 1.3, Q matched to 8 for the B = 32 curve).
        let d = paper_delay(8, 20);
        let mts = dsb_mts(32, 32, d);
        assert!((1e11..1e14).contains(&mts), "MTS {mts:.3e} should be near the paper's 1e12");
    }

    #[test]
    fn paper_figure4_b64_tracks_b32() {
        // "The curve for B = 64 follows very closely to the curve for
        // B = 32" — within a few orders of magnitude on the log plot, and
        // uniformly better.
        let d = paper_delay(8, 20);
        for k in [24u64, 32, 48] {
            let m32 = dsb_mts(32, k, d);
            let m64 = dsb_mts(64, k, d);
            assert!(m64 >= m32);
        }
    }

    #[test]
    fn small_bank_counts_need_much_larger_k() {
        // "For lower number of banks (B < 32), we need much higher values
        // of K to even reach a MTS value of 10^8."
        let d = paper_delay(12, 20);
        assert!(dsb_mts(4, 32, d) < 1e8);
        assert!(dsb_mts(8, 32, d) < 1e8);
        assert!(dsb_mts(16, 48, d) < dsb_mts(32, 48, d) / 1e3);
    }

    #[test]
    fn monotone_in_k_and_b() {
        let d = 200;
        let mut prev = 0.0;
        for k in (8..=64).step_by(8) {
            let m = dsb_mts(32, k, d);
            assert!(m >= prev, "MTS must grow with K");
            prev = m;
        }
        for (small, large) in [(4u32, 8u32), (8, 16), (16, 32)] {
            assert!(dsb_mts(small, 32, d) <= dsb_mts(large, 32, d));
        }
    }

    #[test]
    fn degenerate_cases() {
        // K > D: overflow impossible → capped MTS.
        assert_eq!(dsb_mts(8, 100, 50), MTS_CAP);
        // K = 1, D = 1: every window of one access overflows a 1-row
        // buffer only when … C(0,0)·(1/B)^0 = 1 → MTS ≈ D.
        assert!(dsb_mts(8, 1, 1) <= 2.0);
        assert_eq!(window_stall_probability(8, 100, 50), 0.0);
        assert_eq!(window_stall_probability(8, 1, 1), 1.0);
    }

    #[test]
    fn cap_applies() {
        let mts = dsb_mts(64, 128, 100);
        assert!(mts <= MTS_CAP);
    }

    #[test]
    fn probability_consistent_with_mts() {
        let (b, k, d) = (16, 12, 100);
        let p = window_stall_probability(b, k, d);
        let mts = dsb_mts(b, k, d);
        // MTS ≈ ln2/p for small p
        let approx = (2f64).ln() / p + d as f64;
        assert!((mts - approx).abs() / approx < 0.01);
    }
}
