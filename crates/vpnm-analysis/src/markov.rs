//! Bank access queue stall analysis (paper Section 5.2, Figure 5).
//!
//! Unlike the delay-storage analysis there is no fixed window to reason
//! over — the queue carries state. The paper models one bank's queue as a
//! probabilistic state machine over *work remaining*: each memory cycle a
//! new request arrives with probability `p = 1/(B·R)` and adds `L` cycles
//! of work; otherwise one cycle of work is served. If an arrival would
//! push the backlog beyond `Q·L` (a full queue), the chain falls into the
//! absorbing *stall* state. This module computes:
//!
//! * the exact absorption probability after `t` steps (distribution
//!   evolution — the paper's `I·Mᵗ`), used for validation;
//! * the Mean Time to Stall via the quasi-stationary absorption rate
//!   (spectral method), which reaches the 10¹⁴-cycle regimes of Figure 6
//!   that explicit matrix powering cannot;
//! * the exact expected time to absorption by direct linear solve, for
//!   small configurations.

use crate::MTS_CAP;

/// The Markov model of one bank's access queue.
///
/// ```
/// use vpnm_analysis::BankQueueModel;
///
/// // Figure 5's illustration: L = 3, Q = 2.
/// let m = BankQueueModel::new(4, 3, 2, 1.0);
/// assert_eq!(m.num_states(), 7); // work 0..=6
/// let p1 = m.absorption_probability(100);
/// let p2 = m.absorption_probability(1000);
/// assert!(p1 < p2 && p2 < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankQueueModel {
    banks: u32,
    l: u64,
    q: u64,
    r: f64,
    /// Fraction of interface requests that feed this queue (1.0 for the
    /// bank access queue; the write fraction for the write-buffer variant
    /// of the same analysis).
    demand_fraction: f64,
}

impl BankQueueModel {
    /// Creates the model for `banks` banks, bank latency `l`, queue size
    /// `q`, bus scaling ratio `r`.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or `r < 1.0`.
    pub fn new(banks: u32, l: u64, q: u64, r: f64) -> Self {
        assert!(banks >= 1 && l >= 1 && q >= 1, "dimensions must be positive");
        assert!(r.is_finite() && r >= 1.0, "bus ratio must be >= 1.0");
        BankQueueModel { banks, l, q, r, demand_fraction: 1.0 }
    }

    /// The same chain with only a `fraction` of interface requests feeding
    /// it — the paper's *write buffer* stall analysis (Section 4.3: "the
    /// analysis of the write buffer stall is similar to the analysis of
    /// bank request queue"), where the write buffer holds `ceil(Q/2)`
    /// entries but sees only the write share of the traffic.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction ∈ (0, 1]`, plus the [`BankQueueModel::new`]
    /// conditions.
    pub fn with_demand_fraction(banks: u32, l: u64, q: u64, r: f64, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        let mut m = Self::new(banks, l, q, r);
        m.demand_fraction = fraction;
        m
    }

    /// Arrival probability per memory cycle: `demand/(B·R)` (one interface
    /// request per interface cycle, spread uniformly over `B` banks, with
    /// the memory clock running `R`× faster).
    pub fn arrival_probability(&self) -> f64 {
        self.demand_fraction / (f64::from(self.banks) * self.r)
    }

    /// Offered load: expected work arriving per memory cycle, `p·L`.
    /// Above 1.0 the queue is unstable and stalls quickly regardless of
    /// `Q` — the regime of the paper's `B < 32` curves in Figure 6.
    pub fn utilization(&self) -> f64 {
        self.arrival_probability() * self.l as f64
    }

    /// Maximum backlog before the stall state: `Q·L` cycles of work.
    pub fn max_work(&self) -> u64 {
        self.q * self.l
    }

    /// Number of transient states (work levels `0..=Q·L`).
    pub fn num_states(&self) -> usize {
        (self.max_work() + 1) as usize
    }

    /// One step of the transient dynamics: redistributes the state mass
    /// in `v` and returns the mass absorbed into the stall state.
    fn step(&self, v: &[f64], next: &mut [f64]) -> f64 {
        let p = self.arrival_probability();
        let n = self.max_work() as usize;
        let l = self.l as usize;
        next.fill(0.0);
        let mut absorbed = 0.0;
        for (w, &mass) in v.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            // no arrival: serve one cycle of work
            next[w.saturating_sub(1)] += mass * (1.0 - p);
            // arrival: add L cycles of work, stall on overflow
            if w + l > n {
                absorbed += mass * p;
            } else {
                next[w + l] += mass * p;
            }
        }
        absorbed
    }

    /// Exact probability that at least one stall has occurred within `t`
    /// memory cycles, starting from an idle bank — the paper's `I·Mᵗ`
    /// computation.
    pub fn absorption_probability(&self, t: u64) -> f64 {
        let mut v = vec![0.0; self.num_states()];
        let mut next = vec![0.0; self.num_states()];
        v[0] = 1.0;
        let mut absorbed = 0.0;
        for _ in 0..t {
            absorbed += self.step(&v, &mut next);
            std::mem::swap(&mut v, &mut next);
            if absorbed > 1.0 - 1e-15 {
                break;
            }
        }
        absorbed.min(1.0)
    }

    /// The first step count `t` (memory cycles) at which the absorption
    /// probability from idle reaches `target`, by direct distribution
    /// evolution. Used for system-level MTS: the whole controller stalls
    /// when *any* of its `B` independent bank chains does, so the system
    /// median is `time_to_absorption_probability(1 − 0.5^(1/B))`.
    ///
    /// Returns `None` if `target` is not reached within `horizon` steps.
    ///
    /// # Panics
    ///
    /// Panics unless `target ∈ (0, 1)`.
    pub fn time_to_absorption_probability(&self, target: f64, horizon: u64) -> Option<u64> {
        assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
        let mut v = vec![0.0; self.num_states()];
        let mut next = vec![0.0; self.num_states()];
        v[0] = 1.0;
        let mut absorbed = 0.0;
        for t in 1..=horizon {
            absorbed += self.step(&v, &mut next);
            std::mem::swap(&mut v, &mut next);
            if absorbed >= target {
                return Some(t);
            }
        }
        None
    }

    /// Exact mean time to absorption from the idle state, in memory
    /// cycles, by a banded linear solve of `(I − T)·x = 1`.
    ///
    /// The system has lower bandwidth 1 (service moves work down by one)
    /// and upper bandwidth `L` (an arrival adds `L` work), so elimination
    /// costs `O(Q·L²)` — exact even in the 10¹⁴-cycle regimes where
    /// iterative methods cannot converge.
    pub fn mean_absorption_cycles(&self) -> f64 {
        let n = self.max_work() as usize; // states 0..=n
        let l = self.l as usize;
        let p = self.arrival_probability();
        // Row w encodes sum_j c[j]·x_{w+j} = rhs over offsets j in 0..=L.
        let width = l + 1;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        let mut rhs: Vec<f64> = Vec::with_capacity(n + 1);
        for w in 0..=n {
            let mut c = vec![0.0; width];
            // x_w − (1−p)·x_{max(w−1,0)} − p·x_{w+L} = 1
            c[0] = if w == 0 { p } else { 1.0 };
            if w + l <= n {
                c[l] -= p;
            }
            let mut b = 1.0;
            if w >= 1 {
                // eliminate the subdiagonal −(1−p)·x_{w−1} with the
                // already-reduced previous row
                let prev_c = &rows[w - 1];
                let f = (1.0 - p) / prev_c[0];
                for j in 1..width {
                    c[j - 1] += f * prev_c[j];
                }
                b += f * rhs[w - 1];
            }
            rows.push(c);
            rhs.push(b);
        }
        // Back substitution.
        let mut x = vec![0.0f64; n + 1];
        for w in (0..=n).rev() {
            let mut acc = rhs[w];
            for j in 1..width {
                if w + j <= n {
                    acc -= rows[w][j] * x[w + j];
                }
            }
            x[w] = acc / rows[w][0];
        }
        // The elimination is exact to ~1e-16 relative precision; when the
        // true mean exceeds ~1/ε the cancellation can flip signs or blow
        // up. Those chains are astronomically stable — past the paper's
        // own 10^16 plot cap — so report "effectively never".
        if !x[0].is_finite() || x[0] <= 0.0 || x[0] > 1e16 {
            f64::INFINITY
        } else {
            x[0]
        }
    }

    /// Mean Time to Stall in **interface cycles** (the unit the paper
    /// plots): the 50%-probability absorption time. Absorption from the
    /// quasi-stationary regime is geometrically distributed, so the median
    /// is `ln 2` times the mean. Capped at [`MTS_CAP`].
    pub fn mts_cycles(&self) -> f64 {
        let mean_mem = self.mean_absorption_cycles();
        ((mean_mem * (2f64).ln()) / self.r).min(MTS_CAP)
    }

    /// Exact expected time to absorption from idle, by dense linear solve
    /// of `(I − T)·x = 1`. Exposed for validating the spectral method on
    /// small models.
    ///
    /// # Panics
    ///
    /// Panics if the state space exceeds 600 states (use
    /// [`BankQueueModel::mts_cycles`] instead).
    pub fn mean_time_to_stall_exact(&self) -> f64 {
        let n = self.num_states();
        assert!(n <= 600, "exact solve limited to small models ({n} states)");
        let p = self.arrival_probability();
        let l = self.l as usize;
        // Build (I - T) where T is the transient transition matrix.
        let mut a = vec![vec![0.0f64; n]; n];
        let mut b = vec![1.0f64; n];
        for (w, row) in a.iter_mut().enumerate() {
            row[w] += 1.0;
            row[w.saturating_sub(1)] -= 1.0 - p;
            if w + l < n {
                row[w + l] -= p;
            }
        }
        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let pivot = (col..n)
                .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
                .expect("non-empty");
            a.swap(col, pivot);
            b.swap(col, pivot);
            let diag = a[col][col];
            assert!(diag.abs() > 1e-300, "singular system");
            for row in 0..n {
                if row != col && a[row][col] != 0.0 {
                    let f = a[row][col] / diag;
                    let pivot_row = a[col].clone();
                    for (k, entry) in a[row].iter_mut().enumerate().skip(col) {
                        *entry -= f * pivot_row[k];
                    }
                    b[row] -= f * b[col];
                }
            }
        }
        // expected memory cycles from the idle state, in interface cycles
        (b[0] / a[0][0]) / self.r
    }

    /// The dense one-step transition matrix including the absorbing stall
    /// state as the last row/column — the paper's Figure 5 `M`. Intended
    /// for display and small-model validation.
    pub fn transition_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.num_states();
        let p = self.arrival_probability();
        let l = self.l as usize;
        let mut m = vec![vec![0.0; n + 1]; n + 1];
        for w in 0..n {
            m[w][w.saturating_sub(1)] += 1.0 - p;
            if w + l < n {
                m[w][w + l] += p;
            } else {
                m[w][n] += p; // stall
            }
        }
        m[n][n] = 1.0; // absorbing
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_matrix_rows_sum_to_one() {
        let m = BankQueueModel::new(4, 3, 2, 1.0).transition_matrix();
        for (i, row) in m.iter().enumerate() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn figure5_shape() {
        // L = 3, Q = 2: seven transient work levels + stall.
        let model = BankQueueModel::new(16, 3, 2, 1.0);
        let m = model.transition_matrix();
        assert_eq!(m.len(), 8);
        let p = model.arrival_probability();
        // idle --p--> work 3
        assert!((m[0][3] - p).abs() < 1e-12);
        // idle --(1-p)--> idle
        assert!((m[0][0] - (1.0 - p)).abs() < 1e-12);
        // full (6) --p--> stall
        assert!((m[6][7] - p).abs() < 1e-12);
        // full (6) --(1-p)--> 5
        assert!((m[6][5] - (1.0 - p)).abs() < 1e-12);
    }

    #[test]
    fn absorption_probability_is_monotone_in_t() {
        let m = BankQueueModel::new(4, 3, 2, 1.0);
        let mut prev = 0.0;
        for t in [10u64, 100, 1000, 10_000] {
            let p = m.absorption_probability(t);
            assert!(p >= prev);
            prev = p;
        }
        assert!(prev > 0.5, "small overloaded queue must stall quickly");
    }

    #[test]
    fn banded_solve_matches_dense_solve() {
        for (b, l, q, r) in [(4u32, 3u64, 2u64, 1.0f64), (8, 3, 4, 1.3), (16, 5, 4, 1.0)] {
            let m = BankQueueModel::new(b, l, q, r);
            let banded = m.mean_absorption_cycles() / r;
            let dense = m.mean_time_to_stall_exact();
            assert!(
                (banded - dense).abs() / dense < 1e-9,
                "B={b} L={l} Q={q}: banded {banded} vs dense {dense}"
            );
        }
    }

    #[test]
    fn mts_matches_direct_absorption_half_time() {
        // Find t where absorption ≈ 0.5 by direct evolution and compare
        // against the analytic median.
        let m = BankQueueModel::new(6, 4, 3, 1.0);
        let mts = m.mts_cycles() * m.r; // memory cycles
        let p_at_mts = m.absorption_probability(mts.round() as u64);
        assert!(
            (0.30..0.70).contains(&p_at_mts),
            "absorption at MTS should be ≈ 0.5, got {p_at_mts}"
        );
    }

    #[test]
    fn trivial_chain_closed_form() {
        // Q = 1, L = 1: mean absorption from idle is (1+p)/p² memory
        // cycles (stall requires an arrival landing on a busy bank).
        let m = BankQueueModel::new(4, 1, 1, 1.0);
        let p = m.arrival_probability();
        let expect = (1.0 + p) / (p * p);
        let got = m.mean_absorption_cycles();
        assert!((got - expect).abs() / expect < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn figure6_large_banks_reach_huge_mts() {
        // Paper: B = 32, Q = 64 (L = 20, R = 1.3) reaches ~1e14.
        let m = BankQueueModel::new(32, 20, 64, 1.3);
        assert!(m.utilization() < 1.0);
        let mts = m.mts_cycles();
        assert!(mts > 1e12, "MTS {mts:.3e} should be ~1e14");
    }

    #[test]
    fn figure6_small_banks_capped_near_1e2() {
        // Paper: "a lower number of banks (B < 32) can only provide a
        // maximum MTS value of 10^2 for even larger values of Q."
        for b in [4u32, 8, 16] {
            let m = BankQueueModel::new(b, 20, 64, 1.3);
            assert!(m.utilization() > 0.9, "B={b} should be (near-)overloaded");
            let mts = m.mts_cycles();
            assert!(mts < 1e5, "B={b}: MTS {mts:.3e} must stay tiny");
        }
    }

    #[test]
    fn mts_monotone_in_q() {
        let mut prev = 0.0;
        for q in [8u64, 16, 24, 32] {
            let mts = BankQueueModel::new(32, 20, q, 1.3).mts_cycles();
            assert!(mts >= prev, "Q={q}");
            prev = mts;
        }
    }

    #[test]
    fn mts_improves_with_r() {
        let slow = BankQueueModel::new(32, 20, 16, 1.0).mts_cycles();
        let fast = BankQueueModel::new(32, 20, 16, 1.4).mts_cycles();
        assert!(fast > slow, "higher bus ratio must improve MTS: {fast} vs {slow}");
    }

    #[test]
    #[should_panic(expected = "exact solve limited")]
    fn exact_solver_guards_size() {
        let _ = BankQueueModel::new(32, 20, 64, 1.3).mean_time_to_stall_exact();
    }

    #[test]
    fn write_buffer_does_not_dominate() {
        // Paper Section 4.3: the write buffer is half the size of the bank
        // access queue but sees at most half the traffic, so its stall
        // rate "does not dominate the overall stall". Check across
        // realistic write fractions on the paper configuration.
        for q in [24u64, 32, 48, 64] {
            let baq = BankQueueModel::new(32, 20, q, 1.3).mts_cycles();
            for write_fraction in [0.2f64, 0.3, 0.5] {
                let wb = BankQueueModel::with_demand_fraction(
                    32,
                    20,
                    q.div_ceil(2),
                    1.3,
                    write_fraction,
                )
                .mts_cycles();
                if write_fraction <= 0.3 {
                    assert!(
                        wb >= baq,
                        "Q={q} wf={write_fraction}: write buffer MTS {wb:.2e} must not \
                         dominate the queue's {baq:.2e}"
                    );
                } else {
                    // at a full 50/50 write mix the halved buffer can bind
                    // slightly, but stays within an order of magnitude —
                    // still "does not dominate the overall stall"
                    assert!(
                        wb >= baq / 20.0,
                        "Q={q} wf={write_fraction}: write buffer MTS {wb:.2e} far below \
                         the queue's {baq:.2e}"
                    );
                }
            }
        }
    }

    #[test]
    fn demand_fraction_scales_arrivals() {
        let full = BankQueueModel::new(8, 4, 4, 1.0);
        let half = BankQueueModel::with_demand_fraction(8, 4, 4, 1.0, 0.5);
        assert!((half.arrival_probability() - full.arrival_probability() / 2.0).abs() < 1e-15);
        assert!(half.mts_cycles() > full.mts_cycles());
    }

    #[test]
    fn time_to_absorption_probability_consistent() {
        let m = BankQueueModel::new(4, 3, 2, 1.0);
        let t = m.time_to_absorption_probability(0.5, 1_000_000).expect("reachable");
        let p = m.absorption_probability(t);
        let p_before = m.absorption_probability(t - 1);
        assert!(p >= 0.5 && p_before < 0.5, "t={t}: p(t)={p}, p(t-1)={p_before}");
        // unreachable targets report None
        let tiny = BankQueueModel::new(64, 2, 8, 1.5);
        assert_eq!(tiny.time_to_absorption_probability(0.99, 10), None);
    }
}
