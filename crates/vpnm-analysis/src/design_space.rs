//! The Figure 7 / Table 2 design-space exploration.
//!
//! The paper "run\[s\] the hardware overhead tool for several thousand
//! configurations with varying architectural parameters and consider\[s\]
//! the Pareto optimal design points in terms of area, MTS, and bandwidth
//! utilization (R)". This module sweeps `(B, Q, K)` grids for each `R`,
//! evaluates total MTS (delay-storage + bank-queue mechanisms) and
//! area/energy (via `vpnm-hw`), and extracts the Pareto frontier.

use crate::combine::combined_mts;
use crate::dsb::{dsb_mts, paper_delay_with_ratio};
use crate::markov::BankQueueModel;
use std::collections::HashMap;
use std::sync::Mutex;
use vpnm_hw::{estimate, ControllerParams};

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Banks `B`.
    pub banks: u32,
    /// Queue entries `Q`.
    pub queue_entries: u64,
    /// Storage rows `K`.
    pub storage_rows: u64,
    /// Bus scaling ratio `R`.
    pub bus_ratio: f64,
    /// Normalized delay `D` used by the analysis (`ceil(Q·L/R)`).
    pub delay: u64,
    /// Delay-storage-buffer MTS (cycles).
    pub mts_dsb: f64,
    /// Bank-access-queue MTS (cycles).
    pub mts_queue: f64,
    /// Combined MTS (cycles).
    pub mts_total: f64,
    /// Total controller area, mm².
    pub area_mm2: f64,
    /// Energy per access, nJ.
    pub energy_nj: f64,
}

/// Sweep bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Bank counts to evaluate.
    pub banks: Vec<u32>,
    /// Queue sizes to evaluate.
    pub queue_entries: Vec<u64>,
    /// Storage rows to evaluate.
    pub storage_rows: Vec<u64>,
    /// Bus ratios to evaluate.
    pub bus_ratios: Vec<f64>,
    /// Bank access latency `L`.
    pub bank_latency: u64,
}

impl SweepConfig {
    /// The grid behind the paper's Figure 7: `B ∈ {16, 32, 64}`,
    /// `Q ∈ {8..64}`, `K ∈ {16..128}`, `R ∈ {1.0..1.5}`, `L = 20`.
    pub fn paper_figure7() -> Self {
        SweepConfig {
            banks: vec![16, 32, 64],
            queue_entries: (8..=64).step_by(8).collect(),
            storage_rows: (16..=128).step_by(16).collect(),
            bus_ratios: vec![1.0, 1.1, 1.2, 1.3, 1.4, 1.5],
            bank_latency: 20,
        }
    }

    /// A small grid for fast tests.
    pub fn tiny() -> Self {
        SweepConfig {
            banks: vec![16, 32],
            queue_entries: vec![8, 16],
            storage_rows: vec![16, 32],
            bus_ratios: vec![1.3],
            bank_latency: 20,
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.banks.len()
            * self.queue_entries.len()
            * self.storage_rows.len()
            * self.bus_ratios.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evaluates one configuration.
pub fn evaluate(banks: u32, q: u64, k: u64, r: f64, l: u64) -> DesignPoint {
    let delay = paper_delay_with_ratio(q, l, r);
    let mts_dsb = dsb_mts(banks, k, delay);
    let mts_queue = BankQueueModel::new(banks, l, q, r).mts_cycles();
    let mts_total = combined_mts(&[mts_dsb, mts_queue]);
    let params = ControllerParams {
        banks,
        bank_latency: l,
        queue_entries: q,
        storage_rows: k,
        bus_ratio: r,
        ..ControllerParams::paper_default()
    };
    let hw = estimate(&params);
    DesignPoint {
        banks,
        queue_entries: q,
        storage_rows: k,
        bus_ratio: r,
        delay,
        mts_dsb,
        mts_queue,
        mts_total,
        area_mm2: hw.total_area_mm2,
        energy_nj: hw.energy_nj,
    }
}

/// Evaluates the full grid, parallelized across bank-queue Markov solves
/// (the dominant cost). Markov results are memoized on `(B, Q, R)` since
/// `K` does not enter that model.
pub fn sweep(config: &SweepConfig) -> Vec<DesignPoint> {
    // Pre-compute the expensive Markov MTS for each distinct (B, Q, R).
    let mut keys: Vec<(u32, u64, u64)> = Vec::new(); // r stored as milli-units
    for &b in &config.banks {
        for &q in &config.queue_entries {
            for &r in &config.bus_ratios {
                keys.push((b, q, (r * 1000.0).round() as u64));
            }
        }
    }
    keys.sort_unstable();
    keys.dedup();

    let cache: Mutex<HashMap<(u32, u64, u64), f64>> = Mutex::new(HashMap::new());
    let workers =
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(keys.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(b, q, rm)) = keys.get(i) else { break };
                let r = rm as f64 / 1000.0;
                let mts = BankQueueModel::new(b, config.bank_latency, q, r).mts_cycles();
                cache.lock().expect("no poisoned workers").insert((b, q, rm), mts);
            });
        }
    })
    .expect("sweep workers must not panic");
    let cache = cache.into_inner().expect("workers joined");

    let mut out = Vec::with_capacity(config.len());
    for &b in &config.banks {
        for &q in &config.queue_entries {
            for &k in &config.storage_rows {
                for &r in &config.bus_ratios {
                    let l = config.bank_latency;
                    let delay = paper_delay_with_ratio(q, l, r);
                    let mts_dsb = dsb_mts(b, k, delay);
                    let rm = (r * 1000.0).round() as u64;
                    let mts_queue = cache[&(b, q, rm)];
                    let mts_total = combined_mts(&[mts_dsb, mts_queue]);
                    let params = ControllerParams {
                        banks: b,
                        bank_latency: l,
                        queue_entries: q,
                        storage_rows: k,
                        bus_ratio: r,
                        ..ControllerParams::paper_default()
                    };
                    let hw = estimate(&params);
                    out.push(DesignPoint {
                        banks: b,
                        queue_entries: q,
                        storage_rows: k,
                        bus_ratio: r,
                        delay,
                        mts_dsb,
                        mts_queue,
                        mts_total,
                        area_mm2: hw.total_area_mm2,
                        energy_nj: hw.energy_nj,
                    });
                }
            }
        }
    }
    out
}

/// Filters `points` down to the Pareto frontier maximizing MTS while
/// minimizing area. The result is sorted by area ascending.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut sorted: Vec<DesignPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.area_mm2.total_cmp(&b.area_mm2).then(b.mts_total.total_cmp(&a.mts_total))
    });
    let mut frontier: Vec<DesignPoint> = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for p in sorted {
        if p.mts_total > best {
            best = p.mts_total;
            frontier.push(p);
        }
    }
    frontier
}

/// The cheapest point achieving at least `min_mts`, if any — how Table 2
/// picks "optimal design parameters" per MTS budget.
pub fn cheapest_at_least(points: &[DesignPoint], min_mts: f64) -> Option<DesignPoint> {
    points
        .iter()
        .filter(|p| p.mts_total >= min_mts)
        .min_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_covers_grid() {
        let cfg = SweepConfig::tiny();
        let points = sweep(&cfg);
        assert_eq!(points.len(), cfg.len());
        assert!(!cfg.is_empty());
        for p in &points {
            assert!(p.area_mm2 > 0.0);
            assert!(p.mts_total > 0.0);
            assert!(p.mts_total <= crate::MTS_CAP);
            assert!(p.mts_total <= p.mts_dsb.min(p.mts_queue) * 1.000001);
        }
    }

    #[test]
    fn sweep_matches_pointwise_evaluate() {
        let cfg = SweepConfig::tiny();
        let points = sweep(&cfg);
        for p in &points {
            let e =
                evaluate(p.banks, p.queue_entries, p.storage_rows, p.bus_ratio, cfg.bank_latency);
            assert_eq!(p.mts_total, e.mts_total);
            assert_eq!(p.area_mm2, e.area_mm2);
        }
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let points = sweep(&SweepConfig::tiny());
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            assert!(w[0].area_mm2 <= w[1].area_mm2);
            assert!(w[0].mts_total < w[1].mts_total);
        }
        // every non-frontier point is dominated
        for p in &points {
            let dominated =
                frontier.iter().any(|f| f.area_mm2 <= p.area_mm2 && f.mts_total >= p.mts_total);
            assert!(dominated);
        }
    }

    #[test]
    fn cheapest_at_least_honors_threshold() {
        let points = sweep(&SweepConfig::tiny());
        let max_mts = points.iter().map(|p| p.mts_total).fold(0.0, f64::max);
        let pick = cheapest_at_least(&points, max_mts / 10.0);
        if let Some(p) = pick {
            assert!(p.mts_total >= max_mts / 10.0);
        }
        assert!(cheapest_at_least(&points, crate::MTS_CAP * 2.0).is_none());
    }
}
