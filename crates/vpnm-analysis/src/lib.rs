//! Mean-Time-to-Stall mathematics for Virtually Pipelined Network Memory
//! (paper Section 5).
//!
//! The VPNM controller can stall in three ways (Section 4.3); this crate
//! implements the paper's two dominant analyses plus the machinery to
//! explore the design space:
//!
//! * [`dsb`] — the **delay storage buffer** stall (Section 5.1): a closed
//!   form from the probability that `K−1` of the `D−1` neighbouring
//!   accesses hit the same bank,
//!   `MTS = log(1/2) / log(1 − C(D−1, K−1)·(1/B)^(K−1)) + D`.
//! * [`markov`] — the **bank access queue** stall (Section 5.2): the queue
//!   is a probabilistic state machine over "work remaining" (Figure 5);
//!   we compute absorption into the stall state both exactly (matrix
//!   powers, for validation) and via the spectral gap (for the huge MTS
//!   values the paper reports).
//! * [`combine`] — total MTS from the per-mechanism MTS values (stall
//!   rates add).
//! * [`design_space`] — the Figure 7 / Table 2 sweep: thousands of
//!   `(B, Q, K, R)` points, area/energy via `vpnm-hw`, Pareto filtering.
//! * [`binomial`] — log-domain combinatorics shared by the above.
//!
//! # Example
//!
//! ```
//! use vpnm_analysis::{dsb, markov};
//!
//! // Paper Figure 4: B = 32, K = 32 reaches an MTS near 1e12 at R = 1.3.
//! let d = dsb::paper_delay(8, 20); // D = Q·L as in the paper's analysis
//! let mts = dsb::dsb_mts(32, 32, d);
//! assert!(mts > 1e11 && mts < 1e14);
//!
//! // Paper Figure 6: small bank counts can't reach a useful MTS.
//! let small = markov::BankQueueModel::new(4, 20, 8, 1.3).mts_cycles();
//! assert!(small < 1e4);
//! ```

#![warn(missing_docs)]

pub mod binomial;
pub mod combine;
pub mod design_space;
pub mod dsb;
pub mod markov;

pub use combine::combined_mts;
pub use design_space::{sweep, DesignPoint, SweepConfig};
pub use dsb::dsb_mts;
pub use markov::BankQueueModel;

/// The cap the paper applies to MTS values in its analysis plots ("We set
/// the higher limit of the MTS value to 10^16 in all of our analysis").
pub const MTS_CAP: f64 = 1e16;
