//! Combining per-mechanism MTS values into a system MTS.
//!
//! Stall processes are (approximately) independent rare events, so their
//! *rates* add: `1/MTS_total = 1/MTS_dsb + 1/MTS_baq (+ 1/MTS_wb)`. The
//! paper neglects the write-buffer term ("does not dominate the overall
//! stall"); we accept any number of components.

use crate::MTS_CAP;

/// Harmonic combination of independent stall mechanisms' MTS values.
///
/// Components at or above [`MTS_CAP`] are treated as "never stalls".
/// Returns [`MTS_CAP`] when every component is capped, and 0.0 if any
/// component is 0 (always stalling).
///
/// ```
/// use vpnm_analysis::combined_mts;
/// // One fast-stalling mechanism dominates.
/// let total = combined_mts(&[1e3, 1e12]);
/// assert!((total - 1e3).abs() / 1e3 < 0.01);
/// // Two equal mechanisms halve the MTS.
/// assert!((combined_mts(&[1e6, 1e6]) - 5e5).abs() < 1.0);
/// ```
pub fn combined_mts(components: &[f64]) -> f64 {
    assert!(!components.is_empty(), "need at least one component");
    let mut rate = 0.0;
    for &mts in components {
        assert!(mts >= 0.0, "MTS cannot be negative");
        if mts == 0.0 {
            return 0.0;
        }
        if mts < MTS_CAP {
            rate += 1.0 / mts;
        }
    }
    if rate == 0.0 {
        MTS_CAP
    } else {
        (1.0 / rate).min(MTS_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component_identity() {
        assert!((combined_mts(&[123.0]) - 123.0).abs() < 1e-9);
    }

    #[test]
    fn capped_components_ignored() {
        assert_eq!(combined_mts(&[MTS_CAP, MTS_CAP]), MTS_CAP);
        assert_eq!(combined_mts(&[1e6, MTS_CAP]), 1e6);
    }

    #[test]
    fn zero_means_always_stalling() {
        assert_eq!(combined_mts(&[0.0, 1e9]), 0.0);
    }

    #[test]
    fn total_below_minimum_component() {
        let total = combined_mts(&[1e4, 2e4, 3e4]);
        assert!(total < 1e4);
        assert!(total > 1e3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        let _ = combined_mts(&[]);
    }
}
